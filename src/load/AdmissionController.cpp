//===- load/AdmissionController.cpp - Overload admission control ----------===//

#include "load/AdmissionController.h"

using namespace thinlocks;
using namespace thinlocks::load;

const char *load::degradationLevelName(DegradationLevel Level) {
  switch (Level) {
  case DegradationLevel::Normal:
    return "normal";
  case DegradationLevel::Shed:
    return "shed";
  case DegradationLevel::DeferInflation:
    return "defer-inflation";
  case DegradationLevel::EmergencyOnly:
    return "emergency-only";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionLimits Limits)
    : Limits(Limits) {}

void AdmissionController::moveTo(DegradationLevel Target) {
  if (Target == Level)
    return;
  if (static_cast<uint8_t>(Target) > static_cast<uint8_t>(Level))
    ++Ledger.Escalations;
  else
    ++Ledger.DeEscalations;
  Level = Target;
  QuietTicks = 0;
}

DegradationLevel AdmissionController::tick(const PressureSignals &Now) {
  LockGuard Guard(Mu);
  ++Ledger.Ticks;
  ++Ledger.TicksAtLevel[static_cast<uint8_t>(Level)];

  // Typed-error deltas since the previous tick.  The first tick has no
  // baseline; treat the counters as the baseline and report quiet.
  uint64_t MonitorDelta = 0, RegistryDelta = 0, EmergencyDelta = 0;
  if (HaveLast) {
    MonitorDelta = Now.MonitorExhaustionEvents - Last.MonitorExhaustionEvents;
    RegistryDelta =
        Now.RegistryExhaustionEvents - Last.RegistryExhaustionEvents;
    EmergencyDelta = Now.EmergencyInflations - Last.EmergencyInflations;
  }
  Last = Now;
  HaveLast = true;

  // Escalation: immediate, and sized to the evidence.  An emergency
  // inflation proves monitor space is *gone* (allocation already failed
  // and the shared emergency monitor is in use) — jump straight to the
  // top rung.  A monitor-table exhaustion event without an emergency
  // inflation yet means allocations are failing: stop creating monitors
  // (DeferInflation).  Registry exhaustion or high occupancy are the
  // early rungs.
  DegradationLevel Floor = DegradationLevel::Normal;
  if (EmergencyDelta > 0)
    Floor = DegradationLevel::EmergencyOnly;
  else if (MonitorDelta > 0)
    Floor = DegradationLevel::DeferInflation;
  else if (RegistryDelta > 0)
    Floor = DegradationLevel::Shed;
  else if (Now.RegistryOccupancy >= Limits.HighWater ||
           Now.MonitorOccupancy >= Limits.HighWater)
    Floor = DegradationLevel::Shed;

  if (static_cast<uint8_t>(Floor) > static_cast<uint8_t>(Level)) {
    moveTo(Floor);
    return Level;
  }

  // Recovery: only when this tick was quiet on every reactive signal —
  // no typed-error deltas and registry occupancy back under low water.
  // Monitor occupancy is monotone (indices never reused), so it is
  // deliberately not consulted here: after real exhaustion it reads
  // ~1.0 forever, and waiting for it to recede would latch the ladder.
  bool Quiet = MonitorDelta == 0 && RegistryDelta == 0 &&
               EmergencyDelta == 0 &&
               Now.RegistryOccupancy < Limits.LowWater;
  if (!Quiet) {
    QuietTicks = 0;
    return Level;
  }
  if (Level == DegradationLevel::Normal)
    return Level;
  if (++QuietTicks >= Limits.RecoveryDwellTicks)
    moveTo(static_cast<DegradationLevel>(static_cast<uint8_t>(Level) - 1));
  return Level;
}

AdmissionDecision AdmissionController::admit(bool InflationHeavy) {
  LockGuard Guard(Mu);
  uint64_t Serial = ++ArrivalSerial;
  // Deterministic fractional shedding: every ShedOneIn-th arrival, so a
  // fixed arrival schedule always sheds the same sessions.
  bool ShedTurn =
      Limits.ShedOneIn != 0 && Serial % Limits.ShedOneIn == 0;

  AdmissionDecision Decision = AdmissionDecision::Admit;
  switch (Level) {
  case DegradationLevel::Normal:
    Decision = AdmissionDecision::Admit;
    break;
  case DegradationLevel::Shed:
    Decision = ShedTurn ? AdmissionDecision::Shed : AdmissionDecision::Admit;
    break;
  case DegradationLevel::DeferInflation:
    if (InflationHeavy)
      Decision = AdmissionDecision::Defer;
    else
      Decision =
          ShedTurn ? AdmissionDecision::Shed : AdmissionDecision::Admit;
    break;
  case DegradationLevel::EmergencyOnly:
    // No session may allocate a monitor: heavy work is refused outright
    // (its deferred form would still inflate on retry under pressure),
    // light work runs degraded.
    if (InflationHeavy)
      Decision = AdmissionDecision::Shed;
    else
      Decision = ShedTurn ? AdmissionDecision::Shed
                          : AdmissionDecision::AdmitDegraded;
    break;
  }

  switch (Decision) {
  case AdmissionDecision::Admit:
    ++Ledger.Admitted;
    break;
  case AdmissionDecision::AdmitDegraded:
    ++Ledger.AdmittedDegraded;
    break;
  case AdmissionDecision::Defer:
    ++Ledger.Deferred;
    break;
  case AdmissionDecision::Shed:
    ++Ledger.Shed;
    break;
  }
  return Decision;
}

DegradationLevel AdmissionController::level() const {
  LockGuard Guard(Mu);
  return Level;
}

AdmissionController::Counters AdmissionController::counters() const {
  LockGuard Guard(Mu);
  return Ledger;
}

//===- protocols/FissileLock.cpp - TS + MCS fissile lock ------------------===//

#include "protocols/FissileLock.h"

#include "park/ParkingLot.h"
#include "support/SpinWait.h"

#include <cassert>
#include <chrono>
#include <cstdio>

using namespace thinlocks;

namespace {

std::chrono::steady_clock::time_point deadlineAfter(int64_t Nanos) {
  return std::chrono::steady_clock::now() + std::chrono::nanoseconds(Nanos);
}

} // namespace

FissileLock::FissileLock() : Shards(NumShards) {}

FissileLock::~FissileLock() = default;

//===----------------------------------------------------------------------===//
// Guarded fast-path cores
//===----------------------------------------------------------------------===//

bool FissileLock::fastAcquireOutOfLine(FissileCell &Cell, uint32_t Tid) {
  // The whole TS fast path: one CAS, unlocked -> owned.  The guard proves
  // this stays straight-line and call-free at -O2.
  uint32_t Expected = 0;
  return Cell.Word.compare_exchange_strong(Expected, Tid,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed);
}

void FissileLock::fastReleaseOutOfLine(FissileCell &Cell) {
  // The TS release: one store.  The release order publishes the critical
  // section (and the owner-only Depth/MorphedCount writes) to the next
  // acquirer's CAS.
  Cell.Word.store(0, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Side table
//===----------------------------------------------------------------------===//

FissileLock::Shard &FissileLock::shardFor(const Object *Obj) const {
  // Mix the address; objects are 16-byte aligned, so drop the low bits.
  uintptr_t Address = reinterpret_cast<uintptr_t>(Obj);
  return Shards[(Address >> 4) * 0x9e3779b97f4a7c15ull >> 60];
}

FissileLock::FissileCell *FissileLock::resolve(const Object *Obj,
                                               bool CreateIfMissing) const {
  Shard &S = shardFor(Obj);
  LockGuard Guard(S.Mu);
  auto It = S.Map.find(Obj);
  if (It != S.Map.end())
    return It->second.get();
  if (!CreateIfMissing)
    return nullptr;
  auto Cell = std::make_unique<FissileCell>();
  FissileCell *Raw = Cell.get();
  S.Map.emplace(Obj, std::move(Cell));
  const_cast<FissileLock *>(this)->CellsCreated.increment();
  return Raw;
}

//===----------------------------------------------------------------------===//
// Acquire / release
//===----------------------------------------------------------------------===//

void FissileLock::acquireCell(FissileCell &Cell, const ThreadContext &Thread) {
  if (fastAcquireOutOfLine(Cell, Thread.index())) {
    Cell.Depth = 1;
    FastAcquires.increment();
    return;
  }
  acquireSlow(Cell, Thread);
}

void FissileLock::acquireSlow(FissileCell &Cell, const ThreadContext &Thread) {
  const uint32_t Tid = Thread.index();
  QueuedAcquires.increment();

  // Join the MCS arrival queue.  A predecessor means we are not the head:
  // block on our own Parker until the predecessor grants head position
  // with a directed unpark — strict FIFO among queued threads.
  QueueNode Node;
  Node.Pk = Thread.parker();
  QueueNode *Pred = Cell.Tail.exchange(&Node, std::memory_order_acq_rel);
  if (Pred) {
    Pred->Next.store(&Node, std::memory_order_release);
    while (Node.Granted.load(std::memory_order_acquire) == 0)
      Node.Pk->park(); // Spurious wakes re-check the grant flag.
  }

  // Head of the queue: the only thread competing on the TS word.  Spin
  // briefly, then deadline-park in the lot; the releaser's unparkOne ends
  // the park early, and the bounded deadline caps the cost of the
  // store-buffer race between "store 0" and "read Sleepers" on the
  // release side — a missed wake is one park quantum, never lost.
  SpinWait Spin(DefaultSpinPolicy);
  for (;;) {
    uint32_t Expected = 0;
    if (Cell.Word.compare_exchange_weak(Expected, Tid,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed))
      break;
    if (uint64_t ParkNanos = Spin.nextRound()) {
      HeadParks.increment();
      Cell.Sleepers.fetch_add(1, std::memory_order_acq_rel);
      ParkingLot::global().parkUntil(
          &Cell, *Node.Pk,
          [&Cell] {
            return Cell.Word.load(std::memory_order_acquire) != 0;
          },
          deadlineAfter(static_cast<int64_t>(ParkNanos)));
      Cell.Sleepers.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  Cell.Depth = 1;

  // Owner now; pass head position to the successor so it is already
  // poised on the TS word when we release (the fissile handoff).
  QueueNode *Succ = Node.Next.load(std::memory_order_acquire);
  if (!Succ) {
    QueueNode *Expected = &Node;
    if (!Cell.Tail.compare_exchange_strong(Expected, nullptr,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      // A successor swung the tail but has not published Next yet; it is
      // about to, so this spin is bounded by one store.
      while (!(Succ = Node.Next.load(std::memory_order_acquire)))
        cpuRelax();
    }
  }
  if (Succ) {
    Handoffs.increment();
    Parker *SuccPk = Succ->Pk;
    Succ->Granted.store(1, std::memory_order_release);
    // After the store the successor may run and destroy its node; only
    // the captured Parker (registry-lifetime storage) is touched.
    SuccPk->unpark();
  }
}

void FissileLock::releaseCell(FissileCell &Cell) {
  // Grant one morphed waiter per final release (wait-morphing: notified
  // waiters absorb zero wakeups until the monitor is actually free).
  WaitNode *Grantee = nullptr;
  if (Cell.MorphedCount > 0) {
    LockGuard Guard(Cell.WaitMu);
    Grantee = Cell.MorphedHead;
    if (Grantee) {
      Cell.MorphedHead = Grantee->Next;
      if (!Cell.MorphedHead)
        Cell.MorphedTail = nullptr;
      Grantee->Next = nullptr;
      Grantee->Where = WaitNode::State::Granted;
      --Cell.MorphedCount;
    }
  }
  Parker *GranteePk = Grantee ? Grantee->Pk : nullptr;
  fastReleaseOutOfLine(Cell);
  // Post-release the node may be consumed and destroyed by its waiter;
  // touch only the captured Parker.
  if (GranteePk)
    GranteePk->unpark();
  if (Cell.Sleepers.load(std::memory_order_acquire) != 0)
    ParkingLot::global().unparkOne(&Cell);
}

void FissileLock::lock(Object *Obj, const ThreadContext &Thread) {
  assert(Thread.isValid() && "locking with an unattached thread");
  FissileCell *Cell = resolve(Obj, /*CreateIfMissing=*/true);
  const uint32_t Tid = Thread.index();
  if (fastAcquireOutOfLine(*Cell, Tid)) {
    Cell->Depth = 1;
    FastAcquires.increment();
    return;
  }
  if (Cell->Word.load(std::memory_order_relaxed) == Tid) {
    ++Cell->Depth;
    return;
  }
  acquireSlow(*Cell, Thread);
}

void FissileLock::unlock(Object *Obj, const ThreadContext &Thread) {
  [[maybe_unused]] bool Ok = unlockChecked(Obj, Thread);
  assert(Ok && "unlock of a monitor the thread does not own");
}

bool FissileLock::unlockChecked(Object *Obj, const ThreadContext &Thread) {
  FissileCell *Cell = resolve(Obj, /*CreateIfMissing=*/false);
  if (!Cell || Cell->Word.load(std::memory_order_relaxed) != Thread.index())
    return false;
  if (--Cell->Depth > 0)
    return true;
  releaseCell(*Cell);
  return true;
}

bool FissileLock::tryLock(Object *Obj, const ThreadContext &Thread) {
  assert(Thread.isValid() && "locking with an unattached thread");
  FissileCell *Cell = resolve(Obj, /*CreateIfMissing=*/true);
  const uint32_t Tid = Thread.index();
  if (fastAcquireOutOfLine(*Cell, Tid)) {
    Cell->Depth = 1;
    FastAcquires.increment();
    return true;
  }
  if (Cell->Word.load(std::memory_order_relaxed) == Tid) {
    ++Cell->Depth;
    return true;
  }
  return false;
}

TimedLockStatus FissileLock::tryLockFor(Object *Obj,
                                        const ThreadContext &Thread,
                                        int64_t TimeoutNanos) {
  if (tryLock(Obj, Thread))
    return TimedLockStatus::Acquired;
  if (TimeoutNanos <= 0)
    return degradeToTimedOut(false);

  // Impatient path: never joins the MCS queue (an abortable MCS node
  // would complicate every handoff); instead spin/park on the TS word
  // directly, bounded by the deadline.  Fissile has no waits-for graph,
  // so the outcome degrades to TimedOut, never Deadlock.
  FissileCell *Cell = resolve(Obj, /*CreateIfMissing=*/true);
  const uint32_t Tid = Thread.index();
  const auto Deadline = deadlineAfter(TimeoutNanos);
  SpinWait Spin(DefaultSpinPolicy);
  for (;;) {
    uint32_t Expected = 0;
    if (Cell->Word.compare_exchange_weak(Expected, Tid,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      Cell->Depth = 1;
      return TimedLockStatus::Acquired;
    }
    auto Now = std::chrono::steady_clock::now();
    if (Now >= Deadline)
      return degradeToTimedOut(false);
    if (uint64_t ParkNanos = Spin.nextRound()) {
      auto Bound = Now + std::chrono::nanoseconds(ParkNanos);
      Cell->Sleepers.fetch_add(1, std::memory_order_acq_rel);
      ParkingLot::global().parkUntil(
          Cell, *Thread.parker(),
          [Cell] {
            return Cell->Word.load(std::memory_order_acquire) != 0;
          },
          Bound < Deadline ? Bound : Deadline);
      Cell->Sleepers.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

bool FissileLock::holdsLock(Object *Obj, const ThreadContext &Thread) const {
  FissileCell *Cell = resolve(Obj, /*CreateIfMissing=*/false);
  return Cell &&
         Cell->Word.load(std::memory_order_acquire) == Thread.index();
}

uint32_t FissileLock::lockDepth(Object *Obj,
                                const ThreadContext &Thread) const {
  FissileCell *Cell = resolve(Obj, /*CreateIfMissing=*/false);
  // Depth is owner-only state: reading it is safe exactly when the
  // calling thread is the owner (then nobody else writes it).
  if (!Cell || Cell->Word.load(std::memory_order_acquire) != Thread.index())
    return 0;
  return Cell->Depth;
}

//===----------------------------------------------------------------------===//
// Wait / notify
//===----------------------------------------------------------------------===//

WaitStatus FissileLock::wait(Object *Obj, const ThreadContext &Thread,
                             int64_t TimeoutNanos) {
  FissileCell *Cell = resolve(Obj, /*CreateIfMissing=*/false);
  if (!Cell || Cell->Word.load(std::memory_order_relaxed) != Thread.index())
    return WaitStatus::NotOwner;

  // Join the wait set, then fully release the monitor (saving the
  // recursion depth across the wait, per monitor semantics).
  WaitNode Node;
  Node.Pk = Thread.parker();
  {
    LockGuard Guard(Cell->WaitMu);
    Node.Where = WaitNode::State::InWaitSet;
    if (Cell->WaitTail)
      Cell->WaitTail->Next = &Node;
    else
      Cell->WaitHead = &Node;
    Cell->WaitTail = &Node;
  }
  const uint32_t SavedDepth = Cell->Depth;
  Cell->Depth = 0;
  releaseCell(*Cell);

  bool HasDeadline = TimeoutNanos >= 0;
  const auto Deadline = HasDeadline
                            ? deadlineAfter(TimeoutNanos)
                            : std::chrono::steady_clock::time_point::max();
  bool TimedOut = false;
  for (;;) {
    {
      LockGuard Guard(Cell->WaitMu);
      if (Node.Where == WaitNode::State::Granted)
        break;
      if (HasDeadline && std::chrono::steady_clock::now() >= Deadline) {
        if (Node.Where == WaitNode::State::InWaitSet) {
          // Self-unlink: walk the singly linked wait list.
          WaitNode **Link = &Cell->WaitHead;
          WaitNode *Prev = nullptr;
          while (*Link != &Node) {
            Prev = *Link;
            Link = &(*Link)->Next;
          }
          *Link = Node.Next;
          if (Cell->WaitTail == &Node)
            Cell->WaitTail = Prev;
          Node.Where = WaitNode::State::Removed;
          TimedOut = true;
          break;
        }
        // Morphed concurrently with the timeout: the notify counts, so
        // stop watching the clock and wait for the release-time grant.
        HasDeadline = false;
      }
    }
    if (HasDeadline)
      Node.Pk->parkUntil(Deadline);
    else
      Node.Pk->park(); // Spurious wakes re-check Where above.
  }

  // Reacquire at the saved depth (both the notified and the timed-out
  // waiter return owning the monitor).
  acquireCell(*Cell, Thread);
  Cell->Depth = SavedDepth;
  return TimedOut ? WaitStatus::TimedOut : WaitStatus::Notified;
}

void FissileLock::morphOneLocked(FissileCell &Cell) {
  WaitNode *Node = Cell.WaitHead;
  assert(Node && "morph from an empty wait set");
  Cell.WaitHead = Node->Next;
  if (!Cell.WaitHead)
    Cell.WaitTail = nullptr;
  Node->Next = nullptr;
  Node->Where = WaitNode::State::Morphed;
  if (Cell.MorphedTail)
    Cell.MorphedTail->Next = Node;
  else
    Cell.MorphedHead = Node;
  Cell.MorphedTail = Node;
  ++Cell.MorphedCount;
  Morphs.increment();
}

NotifyStatus FissileLock::notify(Object *Obj, const ThreadContext &Thread) {
  FissileCell *Cell = resolve(Obj, /*CreateIfMissing=*/false);
  if (!Cell || Cell->Word.load(std::memory_order_relaxed) != Thread.index())
    return NotifyStatus::NotOwner;
  LockGuard Guard(Cell->WaitMu);
  if (Cell->WaitHead)
    morphOneLocked(*Cell);
  return NotifyStatus::Ok;
}

NotifyStatus FissileLock::notifyAll(Object *Obj, const ThreadContext &Thread) {
  FissileCell *Cell = resolve(Obj, /*CreateIfMissing=*/false);
  if (!Cell || Cell->Word.load(std::memory_order_relaxed) != Thread.index())
    return NotifyStatus::NotOwner;
  LockGuard Guard(Cell->WaitMu);
  while (Cell->WaitHead)
    morphOneLocked(*Cell);
  return NotifyStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

FissileLockStats FissileLock::stats() const {
  FissileLockStats S;
  S.FastAcquires = FastAcquires.value();
  S.QueuedAcquires = QueuedAcquires.value();
  S.HeadParks = HeadParks.value();
  S.Handoffs = Handoffs.value();
  S.Morphs = Morphs.value();
  S.CellsCreated = CellsCreated.value();
  return S;
}

std::string FissileLock::statsJson() const {
  FissileLockStats S = stats();
  char Buffer[256];
  std::snprintf(Buffer, sizeof(Buffer),
                "{\"fast_acquires\": %llu, \"queued_acquires\": %llu, "
                "\"head_parks\": %llu, \"handoffs\": %llu, "
                "\"morphs\": %llu, \"cells\": %llu}",
                (unsigned long long)S.FastAcquires,
                (unsigned long long)S.QueuedAcquires,
                (unsigned long long)S.HeadParks,
                (unsigned long long)S.Handoffs,
                (unsigned long long)S.Morphs,
                (unsigned long long)S.CellsCreated);
  return Buffer;
}

uint64_t FissileLock::cellCount() const { return CellsCreated.value(); }

size_t FissileLock::waitSetSize(const Object *Obj) const {
  FissileCell *Cell = resolve(Obj, /*CreateIfMissing=*/false);
  if (!Cell)
    return 0;
  LockGuard Guard(Cell->WaitMu);
  size_t Count = 0;
  for (WaitNode *Node = Cell->WaitHead; Node; Node = Node->Next)
    ++Count;
  for (WaitNode *Node = Cell->MorphedHead; Node; Node = Node->Next)
    ++Count;
  return Count;
}

//===- protocols/FissileLock.h - TS + MCS fissile lock ---------*- C++ -*-===//
///
/// \file
/// Fissile Locks (Dice & Kogan, arXiv:2003.05025): a test-and-set fast
/// path "fissioned" from an MCS-style arrival queue.  Uncontended
/// acquire/release is one CAS / one store on an outer TS word — as cheap
/// as a plain spinlock — while under contention arriving threads form a
/// strict-FIFO inner queue and *only the queue head* competes on the TS
/// word.  That bounds the futile-CAS traffic of a bare TS lock (every
/// waiter hammering the line) to a single thread, while keeping the
/// barging window of the TS fast path (a newly arriving thread may still
/// win the word with one CAS before joining the queue — the property that
/// makes TS locks fast under light contention).
///
/// This implementation sits on the repo's Parker/ParkingLot substrate
/// rather than pure spinning (the evaluation host is a uniprocessor, so
/// an unbounded TS spin would livelock against the owner):
///
///  - the inner queue is a classic MCS list of stack-allocated nodes;
///    a non-head waiter blocks on its *own* Parker and is granted head
///    position by its predecessor with a directed unpark — never lost;
///  - the head waits for the TS word via bounded ParkingLot parks
///    (validate-under-bucket-lock, deadline = one SpinWait park rung),
///    and the releaser issues an unparkOne after clearing the word, so
///    the TS->queue crossover has no unbounded sleep: a wake that loses
///    the store-buffer race costs at most one park quantum, never the
///    wakeup itself;
///  - wait/notify morph waiters instead of waking them: notify moves the
///    wait node onto a morphed list and the *releasing* unlock grants one
///    morphed waiter per final release (the FatLock wait-morphing
///    discipline, so a notifyAll never stampedes threads into a monitor
///    the notifier still holds).
///
/// Like the paper's baselines the per-object state (TS word, queue tail,
/// wait set) lives in a sharded side table keyed by object address — the
/// object header stays untouched, so Fissile composes with the thin-lock
/// header layout rather than competing for header bits.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_PROTOCOLS_FISSILELOCK_H
#define THINLOCKS_PROTOCOLS_FISSILELOCK_H

#include "core/LockProtocol.h"
#include "heap/Object.h"
#include "park/Parker.h"
#include "support/Compiler.h"
#include "support/Mutex.h"
#include "support/StatsCounter.h"
#include "threads/ThreadContext.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace thinlocks {

/// Monotonic event counters for the fissile lock (statsJson capability).
struct FissileLockStats {
  uint64_t FastAcquires = 0;   ///< TS CAS won without queueing.
  uint64_t QueuedAcquires = 0; ///< Acquires that joined the MCS queue.
  uint64_t HeadParks = 0;      ///< Bounded lot-parks by the queue head.
  uint64_t Handoffs = 0;       ///< MCS head grants to a successor.
  uint64_t Morphs = 0;         ///< Waiters moved wait-set -> morphed list.
  uint64_t CellsCreated = 0;   ///< Side-table cells ever allocated.
};

/// TS fast path + MCS queue, on the Parker/ParkingLot substrate.
class FissileLock {
public:
  static constexpr size_t NumShards = 16;

  FissileLock();
  ~FissileLock();

  FissileLock(const FissileLock &) = delete;
  FissileLock &operator=(const FissileLock &) = delete;

  static const char *protocolName() { return "Fissile"; }

  void lock(Object *Obj, const ThreadContext &Thread);
  void unlock(Object *Obj, const ThreadContext &Thread);
  bool unlockChecked(Object *Obj, const ThreadContext &Thread);
  bool tryLock(Object *Obj, const ThreadContext &Thread);
  TimedLockStatus tryLockFor(Object *Obj, const ThreadContext &Thread,
                             int64_t TimeoutNanos);
  bool holdsLock(Object *Obj, const ThreadContext &Thread) const;
  uint32_t lockDepth(Object *Obj, const ThreadContext &Thread) const;
  WaitStatus wait(Object *Obj, const ThreadContext &Thread,
                  int64_t TimeoutNanos = -1);
  NotifyStatus notify(Object *Obj, const ThreadContext &Thread);
  NotifyStatus notifyAll(Object *Obj, const ThreadContext &Thread);

  FissileLockStats stats() const;

  /// \returns the counters rendered as a JSON object literal (the
  /// SyncBackend statsJson capability).
  std::string statsJson() const;

  /// \returns how many side-table cells exist (== objects ever locked).
  uint64_t cellCount() const;

  /// \returns the current wait-set size of \p Obj's monitor, morphed
  /// waiters included (test/diagnostic aid).
  size_t waitSetSize(const Object *Obj) const;

private:
  /// One MCS arrival-queue node, stack-allocated in acquireSlow.  A
  /// waiter blocks on its own Parker until its predecessor grants it the
  /// head position (Granted); the head then competes on the TS word.
  struct QueueNode {
    Parker *Pk = nullptr;
    std::atomic<QueueNode *> Next{nullptr};
    std::atomic<uint32_t> Granted{0};
  };

  /// One waiting thread in the wait set, stack-allocated in wait().
  struct WaitNode {
    /// Lifecycle, guarded by the cell's WaitMu.
    enum class State : uint8_t {
      InWaitSet, ///< Linked in the wait list; notify may morph it.
      Morphed,   ///< Notified; queued for a grant at a future release.
      Granted,   ///< Released by an unlock; owner of the next wakeup.
      Removed,   ///< Timed out and self-unlinked.
    };
    Parker *Pk = nullptr;
    WaitNode *Next = nullptr;
    State Where = State::InWaitSet;
  };

  /// Per-object lock state.  Depth and MorphedCount are written only by
  /// the thread currently holding the TS word; the release/acquire chain
  /// on Word orders those accesses across owner changes.
  struct FissileCell {
    /// Outer TS word: 0 = free, otherwise the owner's thread index.
    std::atomic<uint32_t> Word{0};
    /// Recursion depth; owner-only (see above).
    uint32_t Depth = 0;
    /// Morphed-list length; owner-only mirror so the release path can
    /// skip WaitMu when no notify is pending.
    uint32_t MorphedCount = 0;
    /// MCS arrival-queue tail.
    std::atomic<QueueNode *> Tail{nullptr};
    /// Threads lot-parked on this cell (queue head + timed triers); lets
    /// the uncontended release skip the ParkingLot entirely.
    std::atomic<uint32_t> Sleepers{0};
    mutable Mutex WaitMu;
    WaitNode *WaitHead TL_GUARDED_BY(WaitMu) = nullptr;
    WaitNode *WaitTail TL_GUARDED_BY(WaitMu) = nullptr;
    WaitNode *MorphedHead TL_GUARDED_BY(WaitMu) = nullptr;
    WaitNode *MorphedTail TL_GUARDED_BY(WaitMu) = nullptr;
  };

  struct Shard {
    mutable Mutex Mu;
    std::unordered_map<const Object *, std::unique_ptr<FissileCell>>
        Map TL_GUARDED_BY(Mu);
  };

  /// The guarded fast-path cores (tools/lint/fastpath_guard.py budgets
  /// `fastAcquireOutOfLine:Fissile` / `fastReleaseOutOfLine:Fissile`):
  /// straight-line CAS / store on the TS word, no calls.
  TL_NOINLINE static bool fastAcquireOutOfLine(FissileCell &Cell,
                                               uint32_t Tid);
  TL_NOINLINE static void fastReleaseOutOfLine(FissileCell &Cell);

  Shard &shardFor(const Object *Obj) const;
  FissileCell *resolve(const Object *Obj, bool CreateIfMissing) const;

  /// Acquires the cell for \p Thread (no recursion handling); sets
  /// Depth = 1.  The MCS slow path.
  void acquireCell(FissileCell &Cell, const ThreadContext &Thread);
  void acquireSlow(FissileCell &Cell, const ThreadContext &Thread);
  /// Final release: grants one morphed waiter (if any), clears the TS
  /// word, and wakes the lot.  Caller must own the cell at depth 0.
  void releaseCell(FissileCell &Cell);

  void morphOneLocked(FissileCell &Cell) TL_REQUIRES(Cell.WaitMu);

  mutable std::vector<Shard> Shards;
  StatsCounter FastAcquires;
  StatsCounter QueuedAcquires;
  StatsCounter HeadParks;
  StatsCounter Handoffs;
  StatsCounter Morphs;
  StatsCounter CellsCreated;
};

static_assert(SyncProtocol<FissileLock>,
              "FissileLock must satisfy the protocol concept");

} // namespace thinlocks

#endif // THINLOCKS_PROTOCOLS_FISSILELOCK_H

//===- fatlock/MonitorTable.cpp - 23-bit monitor index table --------------===//

#include "fatlock/MonitorTable.h"

#include "core/LockWord.h"
#include "support/FailPoint.h"
#include "support/Fatal.h"

using namespace thinlocks;

MonitorTable::MonitorTable(uint32_t RequestedCapacity)
    : Capacity(RequestedCapacity) {
  if (Capacity < 2 || Capacity > MaxMonitorIndex)
    fatalError("MonitorTable capacity %u out of range [2, %u]", Capacity,
               MaxMonitorIndex);
  for (auto &Slot : Segments)
    Slot.store(nullptr, std::memory_order_relaxed);

  // The emergency monitor occupies the top index from birth so that a lock
  // word minted during exhaustion resolves through the same wait-free path
  // as any other, and is pinned so the deflation extension can never
  // retire a monitor that an unknown number of objects share.
  std::lock_guard<std::mutex> Guard(Mutex);
  Storage.push_back(std::make_unique<FatLock>());
  Emergency = Storage.back().get();
  Emergency->pin();
  Segment *Seg = segmentFor(Capacity);
  (*Seg)[Capacity & (SegmentSize - 1)].store(Emergency,
                                             std::memory_order_release);
}

MonitorTable::~MonitorTable() = default;

MonitorTable::Segment *MonitorTable::segmentFor(uint32_t Index) {
  uint32_t SegmentIndex = Index >> SegmentSizeLog2;
  Segment *Seg = Segments[SegmentIndex].load(std::memory_order_relaxed);
  if (!Seg) {
    auto Fresh = std::make_unique<Segment>();
    for (auto &Entry : *Fresh)
      Entry.store(nullptr, std::memory_order_relaxed);
    Seg = Fresh.get();
    SegmentStorage.push_back(std::move(Fresh));
    Segments[SegmentIndex].store(Seg, std::memory_order_release);
  }
  return Seg;
}

uint32_t MonitorTable::allocate() {
  if (TL_FAILPOINT(MonitorTableExhausted)) {
    ExhaustionEvents.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  std::lock_guard<std::mutex> Guard(Mutex);
  if (NextIndex >= Capacity) {
    ExhaustionEvents.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  uint32_t Index = NextIndex++;

  Segment *Seg = segmentFor(Index);
  Storage.push_back(std::make_unique<FatLock>());
  FatLock *Lock = Storage.back().get();
  (*Seg)[Index & (SegmentSize - 1)].store(Lock, std::memory_order_release);
  LiveCount.fetch_add(1, std::memory_order_relaxed);
  return Index;
}

FatLock *MonitorTable::get(uint32_t Index) const {
  if (Index == 0 || Index > Capacity)
    fatalError("MonitorTable::get: monitor index %u out of range "
               "(capacity %u)",
               Index, Capacity);
  Segment *Seg =
      Segments[Index >> SegmentSizeLog2].load(std::memory_order_acquire);
  FatLock *Lock =
      Seg ? (*Seg)[Index & (SegmentSize - 1)].load(std::memory_order_acquire)
          : nullptr;
  if (!Lock)
    fatalError("MonitorTable::get: monitor index %u was never allocated "
               "(%u live, capacity %u)",
               Index, LiveCount.load(std::memory_order_relaxed), Capacity);
  return Lock;
}

FatLock *MonitorTable::resolve(uint32_t LockWord) const {
  if (!lockword::isFat(LockWord))
    fatalError("corrupt lock word 0x%08x: shape bit says thin but a fat "
               "lock was expected",
               LockWord);
  uint32_t Index =
      (LockWord & lockword::MonitorIndexMask) >> lockword::MonitorIndexShift;
  if (Index == 0 || Index > Capacity)
    fatalError("corrupt lock word 0x%08x: monitor index %u out of range "
               "(capacity %u)",
               LockWord, Index, Capacity);
  Segment *Seg =
      Segments[Index >> SegmentSizeLog2].load(std::memory_order_acquire);
  FatLock *Lock =
      Seg ? (*Seg)[Index & (SegmentSize - 1)].load(std::memory_order_acquire)
          : nullptr;
  if (!Lock)
    fatalError("corrupt lock word 0x%08x: monitor index %u was never "
               "allocated (%u live)",
               LockWord, Index, LiveCount.load(std::memory_order_relaxed));
  return Lock;
}

//===- fatlock/MonitorTable.cpp - 23-bit monitor index table --------------===//

#include "fatlock/MonitorTable.h"

#include <cassert>

using namespace thinlocks;

MonitorTable::MonitorTable() {
  for (auto &Slot : Segments)
    Slot.store(nullptr, std::memory_order_relaxed);
}

MonitorTable::~MonitorTable() = default;

uint32_t MonitorTable::allocate() {
  std::lock_guard<std::mutex> Guard(Mutex);
  if (NextIndex > MaxMonitorIndex)
    return 0;
  uint32_t Index = NextIndex++;

  uint32_t SegmentIndex = Index >> SegmentSizeLog2;
  Segment *Seg = Segments[SegmentIndex].load(std::memory_order_relaxed);
  if (!Seg) {
    auto Fresh = std::make_unique<Segment>();
    for (auto &Entry : *Fresh)
      Entry.store(nullptr, std::memory_order_relaxed);
    Seg = Fresh.get();
    SegmentStorage.push_back(std::move(Fresh));
    Segments[SegmentIndex].store(Seg, std::memory_order_release);
  }

  Storage.push_back(std::make_unique<FatLock>());
  FatLock *Lock = Storage.back().get();
  (*Seg)[Index & (SegmentSize - 1)].store(Lock, std::memory_order_release);
  LiveCount.fetch_add(1, std::memory_order_relaxed);
  return Index;
}

FatLock *MonitorTable::get(uint32_t Index) const {
  assert(Index != 0 && Index <= MaxMonitorIndex && "bad monitor index");
  Segment *Seg =
      Segments[Index >> SegmentSizeLog2].load(std::memory_order_acquire);
  assert(Seg && "monitor index names an unallocated segment");
  FatLock *Lock =
      (*Seg)[Index & (SegmentSize - 1)].load(std::memory_order_acquire);
  assert(Lock && "monitor index not allocated");
  return Lock;
}

//===- fatlock/MonitorTable.cpp - 23-bit monitor index table --------------===//

#include "fatlock/MonitorTable.h"

#include "core/LockWord.h"
#include "support/FailPoint.h"
#include "support/Fatal.h"
#include "support/ThreadStripe.h"

#include <algorithm>
#include <cassert>

using namespace thinlocks;

static_assert((MonitorTable::NumAllocShards &
               (MonitorTable::NumAllocShards - 1)) == 0,
              "shard selection masks the stripe slot");

MonitorTable::MonitorTable(uint32_t RequestedCapacity)
    : Capacity(RequestedCapacity) {
  if (Capacity < 2 || Capacity > MaxMonitorIndex)
    fatalError("MonitorTable capacity %u out of range [2, %u]", Capacity,
               MaxMonitorIndex);
  for (auto &Slot : Segments)
    Slot.store(nullptr, std::memory_order_relaxed);

  // The emergency monitor occupies the top index from birth so that a lock
  // word minted during exhaustion resolves through the same wait-free path
  // as any other, and is pinned so the deflation extension can never
  // retire a monitor that an unknown number of objects share.
  LockGuard Guard(Mu);
  Emergency = new FatLock();
  Emergency->pin();
  Segment *Seg = segmentFor(Capacity);
  (*Seg)[Capacity & (SegmentSize - 1)].store(Emergency,
                                             std::memory_order_release);
}

MonitorTable::~MonitorTable() {
  // Monitors are owned by their table slots (including the emergency
  // monitor, which lives at index Capacity like any other).
  for (auto &Slot : Segments) {
    Segment *Seg = Slot.load(std::memory_order_relaxed);
    if (!Seg)
      continue;
    for (auto &Entry : *Seg)
      delete Entry.load(std::memory_order_relaxed);
  }
}

MonitorTable::Segment *MonitorTable::segmentFor(uint32_t Index) {
  uint32_t SegmentIndex = Index >> SegmentSizeLog2;
  Segment *Seg = Segments[SegmentIndex].load(std::memory_order_relaxed);
  if (!Seg) {
    auto Fresh = std::make_unique<Segment>();
    for (auto &Entry : *Fresh)
      Entry.store(nullptr, std::memory_order_relaxed);
    Seg = Fresh.get();
    SegmentStorage.push_back(std::move(Fresh));
    Segments[SegmentIndex].store(Seg, std::memory_order_release);
  }
  return Seg;
}

uint32_t MonitorTable::publish(uint32_t Index) {
  Segment *Seg =
      Segments[Index >> SegmentSizeLog2].load(std::memory_order_acquire);
  assert(Seg && "index handed out before its segment was created");
  FatLock *Lock = new FatLock();
  (*Seg)[Index & (SegmentSize - 1)].store(Lock, std::memory_order_release);
  LiveCount.fetch_add(1, std::memory_order_relaxed);
  return Index;
}

uint32_t MonitorTable::allocate() {
  if (TL_FAILPOINT(MonitorTableExhausted)) {
    ExhaustionEvents.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  AllocShard &Shard =
      Shards[currentThreadStripe().slot() & (NumAllocShards - 1)];
  for (;;) {
    uint64_t Cursor = Shard.Cursor.load(std::memory_order_acquire);
    uint32_t Next = static_cast<uint32_t>(Cursor);
    uint32_t End = static_cast<uint32_t>(Cursor >> 32);
    if (Next < End) {
      // Claim Next by bumping the packed low half.  acquire on success
      // pairs with the refiller's release store so the pre-created
      // segment for this index is visible to publish().
      if (Shard.Cursor.compare_exchange_weak(Cursor, Cursor + 1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed))
        return publish(Next);
      continue;
    }
    uint32_t Index = refill(Shard);
    if (Index == RetryTake)
      continue;
    if (Index == 0)
      return 0;
    return publish(Index);
  }
}

uint32_t MonitorTable::refill(AllocShard &Shard) {
  LockGuard Guard(Mu);
  // Another thread may have refilled this shard while we waited for the
  // mutex; if so the lock-free take will succeed now.
  uint64_t Cursor = Shard.Cursor.load(std::memory_order_relaxed);
  if (static_cast<uint32_t>(Cursor) < static_cast<uint32_t>(Cursor >> 32))
    return RetryTake;

  if (NextIndex < Capacity) {
    uint32_t Block = std::min(AllocBlockSize, Capacity - NextIndex);
    uint32_t First = NextIndex;
    NextIndex += Block;
    // Create every segment the block spans *before* the cursor store:
    // takers claim indices lock-free and must find their segment ready.
    for (uint32_t Index = First >> SegmentSizeLog2,
                  Last = (First + Block - 1) >> SegmentSizeLog2;
         Index <= Last; ++Index)
      segmentFor(Index << SegmentSizeLog2);
    // Keep the first index for the caller; hand the rest to the shard.
    Shard.Cursor.store(
        (static_cast<uint64_t>(First + Block) << 32) | (First + 1),
        std::memory_order_release);
    return First;
  }

  // Central space is gone.  Unused remainders may still sit in other
  // shards' cursors; drain those before declaring exhaustion so a block
  // reservation never leaks indices past Capacity.
  for (AllocShard &Other : Shards) {
    for (;;) {
      uint64_t C = Other.Cursor.load(std::memory_order_acquire);
      uint32_t Next = static_cast<uint32_t>(C);
      uint32_t End = static_cast<uint32_t>(C >> 32);
      if (Next >= End)
        break;
      if (Other.Cursor.compare_exchange_weak(C, C + 1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed))
        return Next;
    }
  }
  ExhaustionEvents.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

FatLock *MonitorTable::get(uint32_t Index) const {
  if (Index == 0 || Index > Capacity)
    fatalError("MonitorTable::get: monitor index %u out of range "
               "(capacity %u)",
               Index, Capacity);
  Segment *Seg =
      Segments[Index >> SegmentSizeLog2].load(std::memory_order_acquire);
  FatLock *Lock =
      Seg ? (*Seg)[Index & (SegmentSize - 1)].load(std::memory_order_acquire)
          : nullptr;
  if (!Lock)
    fatalError("MonitorTable::get: monitor index %u was never allocated "
               "(%u live, capacity %u)",
               Index, LiveCount.load(std::memory_order_relaxed), Capacity);
  return Lock;
}

FatLock *MonitorTable::resolve(uint32_t LockWord) const {
  if (!lockword::isFat(LockWord))
    fatalError("corrupt lock word 0x%08x: shape bit says thin but a fat "
               "lock was expected",
               LockWord);
  uint32_t Index =
      (LockWord & lockword::MonitorIndexMask) >> lockword::MonitorIndexShift;
  if (Index == 0 || Index > Capacity)
    fatalError("corrupt lock word 0x%08x: monitor index %u out of range "
               "(capacity %u)",
               LockWord, Index, Capacity);
  Segment *Seg =
      Segments[Index >> SegmentSizeLog2].load(std::memory_order_acquire);
  FatLock *Lock =
      Seg ? (*Seg)[Index & (SegmentSize - 1)].load(std::memory_order_acquire)
          : nullptr;
  if (!Lock)
    fatalError("corrupt lock word 0x%08x: monitor index %u was never "
               "allocated (%u live)",
               LockWord, Index, LiveCount.load(std::memory_order_relaxed));
  return Lock;
}

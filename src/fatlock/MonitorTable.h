//===- fatlock/MonitorTable.h - 23-bit monitor index table -----*- C++ -*-===//
///
/// \file
/// Maps the 23-bit monitor indices stored in inflated lock words to fat
/// lock pointers (paper §2.3: "We maintain the table which maps inflated
/// monitor indices to fat locks", Figure 2(b)).  The paper contrasts this
/// against the JDK's monitor cache: resolving an index is "simply obtained
/// by shifting the monitor index to the right and indexing into the
/// vector" — no global lock, no hashing.  get() here is lock-free.
///
/// Failure-mode engineering on top of the paper's design:
///  - the index space is finite (capacity is configurable, default the
///    full 23 bits); when allocate() exhausts it the caller degrades to a
///    single pre-allocated *emergency monitor* shared by every object
///    that inflates after exhaustion.  Mutual exclusion is preserved
///    (coarsened); the event is counted, never undefined behavior.
///  - get()/resolve() validate indices in every build mode and terminate
///    with the bad index (and, for resolve, the whole lock word) instead
///    of indexing garbage under NDEBUG.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_FATLOCK_MONITORTABLE_H
#define THINLOCKS_FATLOCK_MONITORTABLE_H

#include "fatlock/FatLock.h"
#include "support/Mutex.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace thinlocks {

/// Growable, chunked index -> FatLock* table.  Lookup is wait-free.
/// Allocation is *sharded*: threads draw indices from per-shard block
/// caches with a CAS, and only block refills (one per AllocBlockSize
/// allocations per shard) take the central mutex — inflation storms no
/// longer serialize on a single lock.  Index 0 is reserved (never
/// allocated) so a zeroed lock word can never accidentally name a
/// monitor.
class MonitorTable {
public:
  /// Indices must fit the 23 bits available in an inflated lock word.
  static constexpr uint32_t MaxMonitorIndex = (1u << 23) - 1;
  static constexpr uint32_t SegmentSizeLog2 = 10;
  static constexpr uint32_t SegmentSize = 1u << SegmentSizeLog2;
  static constexpr uint32_t NumSegments =
      (MaxMonitorIndex + SegmentSize) / SegmentSize;
  /// Allocation shards (power of two; threads map in by stripe slot).
  static constexpr uint32_t NumAllocShards = 16;
  /// Indices reserved from the central cursor per shard refill.  Refills
  /// clamp to the remaining capacity, and exhaustion handling drains
  /// every shard's remainder before reporting failure, so blocking never
  /// costs usable indices.
  static constexpr uint32_t AllocBlockSize = 64;

  /// \param Capacity highest index this table will use.  allocate() hands
  /// out 1 .. Capacity-1; index Capacity is the pre-allocated emergency
  /// monitor.  Tests shrink this to exercise exhaustion without 8M
  /// allocations.
  explicit MonitorTable(uint32_t Capacity = MaxMonitorIndex);
  ~MonitorTable();

  MonitorTable(const MonitorTable &) = delete;
  MonitorTable &operator=(const MonitorTable &) = delete;

  /// Creates a fresh FatLock and \returns its index (>= 1), or 0 if the
  /// index space is exhausted (each failure is counted; see
  /// exhaustionEvents()).  The monitor stays alive for the table's
  /// lifetime: the paper's discipline is that an inflated lock "remains
  /// inflated for the lifetime of the object", and even under the
  /// deflation extension a retired monitor's index is never reused (a
  /// stale fat word must keep resolving to the *retired* monitor so its
  /// holder learns to retry).
  ///
  /// Common case is lock-free: one CAS on the caller's shard cursor.
  /// The central mutex is taken only to refill an empty shard.  A single
  /// thread always sees consecutive indices (its shard's blocks are
  /// reserved in order), and failure is exact: allocate() returns 0 only
  /// after the central cursor *and* every shard remainder are drained,
  /// counting one exhaustion event per failed call.
  uint32_t allocate() TL_EXCLUDES(Mu);

  /// \returns the monitor for \p Index.  Wait-free.  A zero,
  /// out-of-range, or never-allocated index is an invariant violation and
  /// terminates with a diagnostic in every build mode.
  FatLock *get(uint32_t Index) const;

  /// Decodes and validates an *inflated* lock word and \returns its
  /// monitor.  A thin word or a word naming an unallocated index is
  /// corruption: the full word and the decoded index are reported before
  /// terminating, in every build mode.
  FatLock *resolve(uint32_t LockWord) const;

  /// \returns the shared last-resort monitor every post-exhaustion
  /// inflation maps to.  Always allocated, pinned (never retired by
  /// deflation).
  uint32_t emergencyIndex() const { return Capacity; }
  FatLock *emergencyMonitor() const { return Emergency; }

  /// \returns the configured capacity (largest index in use).
  uint32_t capacity() const { return Capacity; }

  /// \returns allocated monitors as a fraction of capacity — the
  /// occupancy signal admission control watches.  Monotone by design:
  /// indices are never reused (see allocate()), so occupancy only ever
  /// rises; the *reactive* exhaustion signals (exhaustionEvents, typed
  /// errors, emergency inflations) are what recede when pressure lifts.
  double occupancy() const {
    return static_cast<double>(LiveCount.load(std::memory_order_relaxed)) /
           static_cast<double>(Capacity);
  }

  /// \returns how many monitors have been allocated (excluding the
  /// emergency monitor).
  uint32_t liveMonitorCount() const {
    return LiveCount.load(std::memory_order_relaxed);
  }

  /// \returns how many allocate() calls failed for exhaustion (including
  /// injected exhaustion).
  uint64_t exhaustionEvents() const {
    return ExhaustionEvents.load(std::memory_order_relaxed);
  }

  /// Records one monitor retirement (owner-path quiescent deflation or
  /// the adaptive engine's speculative scan).  Indices are never reused,
  /// so this is a ledger, not a free-list: occupancy() stays monotone
  /// and this counter says how much of it is retired husks.
  void noteRetirement() {
    RetirementEvents.fetch_add(1, std::memory_order_relaxed);
  }

  /// \returns how many monitors have been retired by deflation.
  uint64_t retirementEvents() const {
    return RetirementEvents.load(std::memory_order_relaxed);
  }

private:
  using Segment = std::array<std::atomic<FatLock *>, SegmentSize>;

  /// A shard's cache of reserved indices, packed as (End << 32) | Next so
  /// one CAS both claims an index and excludes other takers.  Next == End
  /// means empty.  Padded: the whole point is that concurrent allocators
  /// touch distinct cache lines.
  struct alignas(64) AllocShard {
    std::atomic<uint64_t> Cursor{0};
  };

  /// refill() result meaning "another thread refilled the shard while we
  /// waited for the mutex — retry the lock-free take".
  static constexpr uint32_t RetryTake = ~0u;

  /// Ensures the segment covering \p Index exists.
  Segment *segmentFor(uint32_t Index) TL_REQUIRES(Mu);

  /// Takes the mutex and reserves a fresh block for \p Shard, returning
  /// the block's first index for the caller.  Returns RetryTake if the
  /// shard was refilled concurrently, or 0 (after counting an exhaustion
  /// event) if the central cursor and every shard remainder are empty.
  uint32_t refill(AllocShard &Shard) TL_EXCLUDES(Mu);

  /// Creates the FatLock for a claimed \p Index and makes it visible to
  /// the wait-free readers.  Lock-free; the index's segment was created
  /// by the refill that reserved its block.
  uint32_t publish(uint32_t Index);

  mutable Mutex Mu;
  // Atomic (not guarded): wait-free readers resolve through Segments.
  std::array<std::atomic<Segment *>, NumSegments> Segments;
  std::vector<std::unique_ptr<Segment>> SegmentStorage TL_GUARDED_BY(Mu);
  std::array<AllocShard, NumAllocShards> Shards;
  uint32_t Capacity;
  FatLock *Emergency = nullptr;
  uint32_t NextIndex TL_GUARDED_BY(Mu) = 1;
  std::atomic<uint32_t> LiveCount{0};
  std::atomic<uint64_t> ExhaustionEvents{0};
  std::atomic<uint64_t> RetirementEvents{0};
};

} // namespace thinlocks

#endif // THINLOCKS_FATLOCK_MONITORTABLE_H

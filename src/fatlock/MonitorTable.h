//===- fatlock/MonitorTable.h - 23-bit monitor index table -----*- C++ -*-===//
///
/// \file
/// Maps the 23-bit monitor indices stored in inflated lock words to fat
/// lock pointers (paper §2.3: "We maintain the table which maps inflated
/// monitor indices to fat locks", Figure 2(b)).  The paper contrasts this
/// against the JDK's monitor cache: resolving an index is "simply obtained
/// by shifting the monitor index to the right and indexing into the
/// vector" — no global lock, no hashing.  get() here is lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_FATLOCK_MONITORTABLE_H
#define THINLOCKS_FATLOCK_MONITORTABLE_H

#include "fatlock/FatLock.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace thinlocks {

/// Growable, chunked index -> FatLock* table.  Allocation takes a mutex;
/// lookup is wait-free.  Index 0 is reserved (never allocated) so a zeroed
/// lock word can never accidentally name a monitor.
class MonitorTable {
public:
  /// Indices must fit the 23 bits available in an inflated lock word.
  static constexpr uint32_t MaxMonitorIndex = (1u << 23) - 1;
  static constexpr uint32_t SegmentSizeLog2 = 10;
  static constexpr uint32_t SegmentSize = 1u << SegmentSizeLog2;
  static constexpr uint32_t NumSegments =
      (MaxMonitorIndex + SegmentSize) / SegmentSize;

  MonitorTable();
  ~MonitorTable();

  MonitorTable(const MonitorTable &) = delete;
  MonitorTable &operator=(const MonitorTable &) = delete;

  /// Creates a fresh FatLock and \returns its index (>= 1), or 0 if the
  /// 23-bit index space is exhausted.  The monitor stays alive for the
  /// table's lifetime: the paper's discipline is that an inflated lock
  /// "remains inflated for the lifetime of the object", and even under
  /// the deflation extension a retired monitor's index is never reused
  /// (a stale fat word must keep resolving to the *retired* monitor so
  /// its holder learns to retry).
  uint32_t allocate();

  /// \returns the monitor for \p Index.  Wait-free; asserts the index was
  /// allocated.
  FatLock *get(uint32_t Index) const;

  /// \returns how many monitors have been allocated.
  uint32_t liveMonitorCount() const {
    return LiveCount.load(std::memory_order_relaxed);
  }

private:
  using Segment = std::array<std::atomic<FatLock *>, SegmentSize>;

  mutable std::mutex Mutex;
  std::array<std::atomic<Segment *>, NumSegments> Segments;
  std::vector<std::unique_ptr<FatLock>> Storage;
  std::vector<std::unique_ptr<Segment>> SegmentStorage;
  uint32_t NextIndex = 1;
  std::atomic<uint32_t> LiveCount{0};
};

} // namespace thinlocks

#endif // THINLOCKS_FATLOCK_MONITORTABLE_H

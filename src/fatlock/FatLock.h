//===- fatlock/FatLock.h - Heavy-weight Java monitor -----------*- C++ -*-===//
///
/// \file
/// The "pre-existing heavy-weight system" the paper layers thin locks on
/// (§2.1): a multi-word monitor holding the owning thread, a nested lock
/// count, a FIFO entry queue, and a wait set, supporting the full Java
/// monitor semantics (lock, unlock, wait, notify, notifyAll).
///
/// The count here is "the number of locks (not the number of locks minus
/// one, as in a thin lock)" — paper §2.3.
///
/// Blocking is built on the waiting substrate (park/Parker.h): the entry
/// queue and the wait set are intrusive FIFOs of stack-allocated nodes,
/// each naming the blocked thread's Parker, and every wake is a *direct
/// handoff* — the releaser (or notifier) dequeues exactly the thread
/// whose turn it is and unparks it.  The previous implementation's
/// condition variables broadcast every release to every queued thread
/// (notify_all, with a ticket check deciding who proceeds); here only
/// the FIFO head is ever woken, so a release costs one futex wake
/// regardless of queue depth.  Entry order is still strictly FIFO: the
/// queue head has exclusive claim on a free monitor, and the
/// non-blocking paths (tryLock, the uncontended fast path) stand down
/// whenever the queue is non-empty — no barging.
///
/// notify/notifyAll *morph* waiters instead of waking them: the wait
/// node is moved from the wait set onto the entry-queue tail and the
/// thread is granted the monitor by a handoff like any other entrant.  A
/// notified thread therefore blocks exactly once per wait/notify round
/// trip (a naive notify wakes it a first time only to park again behind
/// the notifier's hold), and notifyAll of N waiters issues zero wakes up
/// front instead of N — the releases that grant the monitor wake each in
/// FIFO turn.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_FATLOCK_FATLOCK_H
#define THINLOCKS_FATLOCK_FATLOCK_H

#include "support/Mutex.h"
#include "threads/ThreadContext.h"

#include <atomic>
#include <cstdint>

namespace thinlocks {

class LockStats;
class Parker;

/// Aggregate event counts for one FatLock (snapshot under the internal
/// mutex, so values are mutually consistent).
struct FatLockStats {
  uint64_t Acquisitions = 0;
  uint64_t ContendedAcquisitions = 0;
  uint64_t Waits = 0;
  uint64_t Notifies = 0;
  uint64_t Timeouts = 0;
};

/// A heavy-weight monitor.  Entry is FIFO (queue-ordered); the wait set
/// is FIFO (notify wakes the longest-waiting thread).  All identities are
/// 15-bit thread indices from a ThreadRegistry.
class FatLock {
public:
  enum class WaitResult { Notified, TimedOut };

  /// Result of an unlock that may retire the monitor (deflation support;
  /// see ThinLockImpl's DeflationPolicy).
  enum class ReleaseResult { Released, RetiredNow, NotOwner };

  FatLock() = default;
  FatLock(const FatLock &) = delete;
  FatLock &operator=(const FatLock &) = delete;

  /// Acquires the monitor for \p Thread, blocking FIFO behind earlier
  /// arrivals.  Recursive acquisition increments the hold count.
  /// Asserts that the monitor has not been retired.
  void lock(const ThreadContext &Thread) TL_EXCLUDES(Mu);

  /// Like lock(), but \returns false without acquiring if the monitor
  /// has been *retired* by deflation — the caller must re-read the
  /// object's lock word and start over.  Retirement can only happen
  /// while the entry queue is empty, so once this call has queued it
  /// cannot be stranded.
  bool lockIfLive(const ThreadContext &Thread) TL_EXCLUDES(Mu);

  /// Outcome of a bounded acquisition attempt.
  enum class TimedResult { Acquired, TimedOut, Retired };

  /// Like lockIfLive(), but gives up after \p TimeoutNanos (negative =
  /// wait forever).  On timeout the thread dequeues itself from the
  /// entry FIFO — later entrants are not stranded behind it — and the
  /// caller typically runs a deadlock check before retrying (see
  /// ThinLockImpl).
  TimedResult lockIfLiveFor(const ThreadContext &Thread,
                            int64_t TimeoutNanos) TL_EXCLUDES(Mu);

  /// Releases one hold; when releasing the last hold finds the monitor
  /// completely quiescent (no queued entrants, no waiters), retires it:
  /// a retired monitor rejects all future use via lockIfLive().  The
  /// caller then owns re-publishing the object's thin lock word.
  ReleaseResult unlockAndTryRetire(const ThreadContext &Thread)
      TL_EXCLUDES(Mu);

  /// \returns true once the monitor has been retired by deflation.
  bool isRetired() const TL_EXCLUDES(Mu);

  /// Third-party retirement for the adaptive engine's speculative
  /// deflation scan: retires the monitor iff it is fully quiescent
  /// (unowned, empty entry queue, no waiters, not pinned, not already
  /// retired).  Unlike unlockAndTryRetire() the caller is NOT the owner
  /// — quiescence is the entire claim.  On success the caller owns
  /// re-publishing the object's thin lock word, exactly as with
  /// ReleaseResult::RetiredNow.
  bool retireIfQuiescent() TL_EXCLUDES(Mu);

  /// Attempts to acquire without blocking.  Fails if another thread owns
  /// the monitor or if threads are queued ahead.
  bool tryLock(const ThreadContext &Thread) TL_EXCLUDES(Mu);

  /// Non-blocking acquisition attempt distinguishing "busy" from
  /// "retired by deflation" (the latter means: re-read the lock word).
  enum class TryResult { Acquired, Busy, Retired };
  TryResult tryLockStatus(const ThreadContext &Thread) TL_EXCLUDES(Mu);

  /// Acquires ownership with an initial hold count of \p Count.  Used by
  /// lock inflation, which transfers an existing thin-lock nesting depth
  /// into the fat lock.  The monitor must be unowned with an empty queue;
  /// this is guaranteed because inflation happens before the fat lock is
  /// published in the object's lock word.
  void lockWithCount(const ThreadContext &Thread, uint32_t Count)
      TL_EXCLUDES(Mu);

  /// Emergency-inflation variant of lockWithCount() for a *shared*
  /// monitor (the MonitorTable's exhaustion fallback): blocks until the
  /// monitor is free (FIFO), then credits \p Count holds — or, if the
  /// calling thread already owns it because an earlier object of its
  /// was also inflated onto this monitor, merges \p Count into the
  /// existing hold count.
  void lockMergingCount(const ThreadContext &Thread, uint32_t Count)
      TL_EXCLUDES(Mu);

  /// Marks this monitor as never retirable (the shared emergency monitor:
  /// an unknown number of lock words may name it, so deflation must not
  /// recycle it).
  void pin() TL_EXCLUDES(Mu);

  /// \returns true if pin() was called.
  bool isPinned() const TL_EXCLUDES(Mu);

  /// Releases one hold; the monitor is freed when the count reaches zero.
  /// Asserts that \p Thread is the owner.
  void unlock(const ThreadContext &Thread) TL_EXCLUDES(Mu);

  /// Like unlock(), but \returns false (without asserting) when \p Thread
  /// is not the owner — the hook for IllegalMonitorStateException.
  bool unlockChecked(const ThreadContext &Thread) TL_EXCLUDES(Mu);

  /// Java Object.wait(): releases *all* holds, sleeps until notified or
  /// until \p TimeoutNanos elapses (negative = wait forever), then
  /// reacquires the monitor with the original hold count before returning.
  /// Asserts that \p Thread is the owner.
  WaitResult wait(const ThreadContext &Thread, int64_t TimeoutNanos = -1)
      TL_EXCLUDES(Mu);

  /// Wakes the longest-waiting thread, if any.  Asserts ownership.
  /// \returns true if a waiter was woken.
  bool notify(const ThreadContext &Thread) TL_EXCLUDES(Mu);

  /// Wakes every waiter.  Asserts ownership.  \returns how many.
  uint32_t notifyAll(const ThreadContext &Thread) TL_EXCLUDES(Mu);

  /// Routes wake-handoff latency samples (unpark-to-resume nanoseconds,
  /// measured by the Parkers) into \p Stats' time-to-wake histogram.
  /// Set by ThinLockImpl at inflation; null (the default) disables
  /// recording.  The sink must outlive the monitor's last use.
  void setStatsSink(LockStats *Stats) {
    StatsSink.store(Stats, std::memory_order_relaxed);
  }

  /// \returns true if \p Thread currently owns this monitor.
  bool heldBy(const ThreadContext &Thread) const TL_EXCLUDES(Mu);

  /// \returns the owner's thread index, or 0 if unowned (racy snapshot).
  uint16_t ownerIndex() const TL_EXCLUDES(Mu);

  /// \returns the owner's current hold count (racy snapshot).
  uint32_t holdCount() const TL_EXCLUDES(Mu);

  /// \returns the number of threads blocked trying to enter.
  uint32_t entryQueueLength() const TL_EXCLUDES(Mu);

  /// \returns the number of threads in the wait set.
  uint32_t waitSetSize() const TL_EXCLUDES(Mu);

  /// \returns a consistent snapshot of the event counters.
  FatLockStats stats() const TL_EXCLUDES(Mu);

private:
  /// One thread blocked in the entry queue; stack-allocated in the
  /// blocking call, linked FIFO.  All fields are guarded by Mu (stack
  /// nodes cannot carry a per-instance TL_GUARDED_BY; the REQUIRES
  /// annotations on every function that touches them enforce it).
  struct EntryNode {
    Parker *Pk = nullptr;
    EntryNode *Next = nullptr;
  };

  /// One thread in the wait set; stack-allocated in wait().  All fields
  /// are guarded by Mu.  The embedded EntryNode is what notify links
  /// onto the entry FIFO (wait morphing) — the waiting thread keeps
  /// sleeping on the same Parker and is woken by the granting handoff.
  struct WaitNode {
    EntryNode Entry;
    WaitNode *Next = nullptr;
    bool Notified = false;
  };

  // Entry-FIFO plumbing; Mu must be held for all of these.
  void pushEntry(EntryNode *Node) TL_REQUIRES(Mu);
  void removeEntry(EntryNode *Node) TL_REQUIRES(Mu);
  /// \returns the Parker to hand the monitor to (the queue head's), or
  /// null when the queue is empty.  Called by releasers with Owner == 0.
  Parker *entryHandoffTarget() const TL_REQUIRES(Mu);
  /// \returns true when \p Node holds the exclusive claim on the free
  /// monitor (no owner, first in line).
  bool claimable(const EntryNode *Node) const TL_REQUIRES(Mu) {
    return Owner == 0 && EntryHead == Node;
  }
  /// Dequeues \p Node (the head), installs \p Index as owner, and feeds
  /// the wake-latency sample to the stats sink.
  void grantTo(EntryNode *Node, uint16_t Index) TL_REQUIRES(Mu);

  // Blocks until the calling thread holds the monitor; Guard must hold
  // Mu on entry and holds it on return (it is dropped around each park).
  // Counts the acquisition as contended unless the monitor was free with
  // an empty queue.
  void acquireSlow(UniqueLock &Guard, const ThreadContext &Thread)
      TL_REQUIRES(Mu);
  void removeWaiter(WaitNode *Node) TL_REQUIRES(Mu);
  void recordWakeLatency(const Parker *Pk);

  mutable Mutex Mu;
  uint16_t Owner TL_GUARDED_BY(Mu) = 0;
  bool Retired TL_GUARDED_BY(Mu) = false;
  bool Pinned TL_GUARDED_BY(Mu) = false;
  uint32_t Hold TL_GUARDED_BY(Mu) = 0;
  /// FIFO of threads blocked on entry.  A free monitor belongs to the
  /// head; releasers wake exactly that thread.
  EntryNode *EntryHead TL_GUARDED_BY(Mu) = nullptr;
  EntryNode *EntryTail TL_GUARDED_BY(Mu) = nullptr;
  uint32_t EntryLen TL_GUARDED_BY(Mu) = 0;
  /// FIFO wait set; notify() wakes the head.
  WaitNode *WaitHead TL_GUARDED_BY(Mu) = nullptr;
  WaitNode *WaitTail TL_GUARDED_BY(Mu) = nullptr;
  uint32_t WaitLen TL_GUARDED_BY(Mu) = 0;
  /// Threads currently inside wait() — including the window after
  /// notify removes them from the wait set but before they re-enter the
  /// entry queue.  Retirement (deflation) must treat them as users.
  uint32_t ThreadsInWait TL_GUARDED_BY(Mu) = 0;
  /// Destination for wake-handoff latency samples (null = don't record).
  /// Atomic, not guarded: set once at inflation, read by releasers.
  std::atomic<LockStats *> StatsSink{nullptr};
  FatLockStats Counters TL_GUARDED_BY(Mu);
};

} // namespace thinlocks

#endif // THINLOCKS_FATLOCK_FATLOCK_H

//===- fatlock/FatLock.cpp - Heavy-weight Java monitor --------------------===//

#include "fatlock/FatLock.h"

#include "core/LockStats.h"
#include "park/Parker.h"

#include <cassert>
#include <chrono>

using namespace thinlocks;

void FatLock::pushEntry(EntryNode *Node) {
  (EntryTail ? EntryTail->Next : EntryHead) = Node;
  EntryTail = Node;
  ++EntryLen;
}

void FatLock::removeEntry(EntryNode *Node) {
  EntryNode *Prev = nullptr;
  for (EntryNode *Cur = EntryHead; Cur; Prev = Cur, Cur = Cur->Next) {
    if (Cur != Node)
      continue;
    (Prev ? Prev->Next : EntryHead) = Cur->Next;
    if (EntryTail == Cur)
      EntryTail = Prev;
    Cur->Next = nullptr;
    --EntryLen;
    return;
  }
  assert(false && "removeEntry: node not queued");
}

Parker *FatLock::entryHandoffTarget() const {
  return EntryHead ? EntryHead->Pk : nullptr;
}

void FatLock::recordWakeLatency(const Parker *Pk) {
  if (LockStats *Stats = StatsSink.load(std::memory_order_relaxed))
    if (uint64_t Nanos = Pk->lastBlockedWakeNanos())
      Stats->recordWakeLatency(Nanos);
}

void FatLock::grantTo(EntryNode *Node, uint16_t Index) {
  assert(claimable(Node) && "granting out of FIFO order");
  removeEntry(Node);
  Owner = Index;
  recordWakeLatency(Node->Pk);
}

void FatLock::acquireSlow(UniqueLock &Guard,
                          const ThreadContext &Thread) {
  if (Owner == 0 && EntryHead == nullptr) {
    Owner = Thread.index();
    return;
  }
  ++Counters.ContendedAcquisitions;
  EntryNode Node;
  Node.Pk = Thread.parker();
  pushEntry(&Node);
  while (!claimable(&Node)) {
    // Park outside the mutex; a releaser that hands off in this window
    // leaves a sticky token, so the park below returns immediately.
    Guard.unlock();
    Node.Pk->park();
    Guard.lock();
  }
  grantTo(&Node, Thread.index());
}

void FatLock::lock(const ThreadContext &Thread) {
  assert(Thread.isValid() && "locking with an unattached thread");
  UniqueLock Guard(Mu);
  assert(!Retired && "locking a retired (deflated) monitor");
  ++Counters.Acquisitions;
  if (Owner == Thread.index()) {
    ++Hold;
    return;
  }
  acquireSlow(Guard, Thread);
  Hold = 1;
}

bool FatLock::lockIfLive(const ThreadContext &Thread) {
  assert(Thread.isValid() && "locking with an unattached thread");
  UniqueLock Guard(Mu);
  if (Retired)
    return false;
  ++Counters.Acquisitions;
  if (Owner == Thread.index()) {
    ++Hold;
    return true;
  }
  // Retirement requires an empty entry queue, so enqueueing below
  // guarantees the monitor stays live until we acquire it.
  acquireSlow(Guard, Thread);
  Hold = 1;
  return true;
}

FatLock::TimedResult FatLock::lockIfLiveFor(const ThreadContext &Thread,
                                            int64_t TimeoutNanos) {
  assert(Thread.isValid() && "locking with an unattached thread");
  UniqueLock Guard(Mu);
  if (Retired)
    return TimedResult::Retired;
  if (Owner == Thread.index()) {
    ++Counters.Acquisitions;
    ++Hold;
    return TimedResult::Acquired;
  }
  if (TimeoutNanos < 0) {
    ++Counters.Acquisitions;
    acquireSlow(Guard, Thread);
    Hold = 1;
    return TimedResult::Acquired;
  }
  if (Owner == 0 && EntryHead == nullptr) {
    // Uncontended: acquire without reading the clock (computing the
    // deadline up front would tax every post-inflation acquisition).
    ++Counters.Acquisitions;
    Owner = Thread.index();
    Hold = 1;
    return TimedResult::Acquired;
  }
  // As in lockIfLive: being queued blocks retirement, so the monitor
  // stays live until we either acquire or dequeue ourselves.
  ++Counters.ContendedAcquisitions;
  EntryNode Node;
  Node.Pk = Thread.parker();
  pushEntry(&Node);
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(TimeoutNanos);
  for (;;) {
    if (claimable(&Node)) {
      ++Counters.Acquisitions;
      grantTo(&Node, Thread.index());
      Hold = 1;
      return TimedResult::Acquired;
    }
    if (std::chrono::steady_clock::now() >= Deadline) {
      ++Counters.Timeouts;
      removeEntry(&Node);
      // If the monitor is free we may have just consumed (or be about
      // to consume) the releaser's handoff; pass it to the new head so
      // the wake is not lost with our departure.
      Parker *Next = Owner == 0 ? entryHandoffTarget() : nullptr;
      Guard.unlock();
      if (Next)
        Next->unpark();
      return TimedResult::TimedOut;
    }
    Guard.unlock();
    Node.Pk->parkUntil(Deadline);
    Guard.lock();
  }
}

FatLock::ReleaseResult
FatLock::unlockAndTryRetire(const ThreadContext &Thread) {
  UniqueLock Guard(Mu);
  if (Owner != Thread.index())
    return ReleaseResult::NotOwner;
  assert(Hold > 0 && "owner with zero hold count");
  if (Hold == 1 && !Pinned && EntryHead == nullptr && ThreadsInWait == 0) {
    // Fully quiescent: nobody is queued and nobody is waiting.  Retire
    // instead of releasing; late arrivals that already resolved this
    // monitor bounce out of lockIfLive() and re-read the object's lock
    // word.
    Hold = 0;
    Owner = 0;
    Retired = true;
    return ReleaseResult::RetiredNow;
  }
  Parker *Next = nullptr;
  if (--Hold == 0) {
    Owner = 0;
    Next = entryHandoffTarget();
  }
  // Unpark after dropping the mutex: the wakee immediately relocks it.
  Guard.unlock();
  if (Next)
    Next->unpark();
  return ReleaseResult::Released;
}

bool FatLock::isRetired() const {
  LockGuard Guard(Mu);
  return Retired;
}

bool FatLock::retireIfQuiescent() {
  LockGuard Guard(Mu);
  if (Retired || Pinned || Owner != 0 || EntryHead != nullptr ||
      ThreadsInWait != 0)
    return false;
  // Owner == 0 makes this mutually exclusive with unlockAndTryRetire
  // (which requires ownership), and an empty entry queue means no
  // handoff claim is outstanding: nobody can acquire this monitor
  // except through lockIfLive(), which now rejects it.
  Retired = true;
  return true;
}

bool FatLock::tryLock(const ThreadContext &Thread) {
  TryResult Result = tryLockStatus(Thread);
  assert(Result != TryResult::Retired &&
         "tryLock on a retired (deflated) monitor");
  return Result == TryResult::Acquired;
}

FatLock::TryResult FatLock::tryLockStatus(const ThreadContext &Thread) {
  assert(Thread.isValid() && "locking with an unattached thread");
  UniqueLock Guard(Mu);
  if (Retired)
    return TryResult::Retired;
  if (Owner == Thread.index()) {
    ++Counters.Acquisitions;
    ++Hold;
    return TryResult::Acquired;
  }
  // A free monitor with a non-empty queue belongs to the queue head;
  // barging past it would break FIFO entry.
  if (Owner != 0 || EntryHead != nullptr)
    return TryResult::Busy;
  ++Counters.Acquisitions;
  Owner = Thread.index();
  Hold = 1;
  return TryResult::Acquired;
}

void FatLock::lockWithCount(const ThreadContext &Thread, uint32_t Count) {
  assert(Thread.isValid() && "locking with an unattached thread");
  assert(Count > 0 && "inflation transfers at least one hold");
  UniqueLock Guard(Mu);
  assert(Owner == 0 && EntryHead == nullptr &&
         "inflation target must be a fresh, unpublished monitor");
  ++Counters.Acquisitions;
  Owner = Thread.index();
  Hold = Count;
}

void FatLock::lockMergingCount(const ThreadContext &Thread, uint32_t Count) {
  assert(Thread.isValid() && "locking with an unattached thread");
  assert(Count > 0 && "inflation transfers at least one hold");
  UniqueLock Guard(Mu);
  assert(!Retired && "emergency monitor must be pinned, never retired");
  ++Counters.Acquisitions;
  if (Owner == Thread.index()) {
    // This thread already routed another object's inflation here: merge
    // the transferred holds so lock/unlock pairs stay balanced.
    Hold += Count;
    return;
  }
  acquireSlow(Guard, Thread);
  Hold = Count;
}

void FatLock::pin() {
  LockGuard Guard(Mu);
  Pinned = true;
}

bool FatLock::isPinned() const {
  LockGuard Guard(Mu);
  return Pinned;
}

void FatLock::unlock(const ThreadContext &Thread) {
  [[maybe_unused]] bool Ok = unlockChecked(Thread);
  assert(Ok && "unlock by non-owner");
}

bool FatLock::unlockChecked(const ThreadContext &Thread) {
  UniqueLock Guard(Mu);
  if (Owner != Thread.index())
    return false;
  assert(Hold > 0 && "owner with zero hold count");
  Parker *Next = nullptr;
  if (--Hold == 0) {
    Owner = 0;
    // Direct FIFO handoff: wake exactly the head of the entry queue; it
    // has the exclusive claim on the free monitor.
    Next = entryHandoffTarget();
  }
  Guard.unlock();
  if (Next)
    Next->unpark();
  return true;
}

void FatLock::removeWaiter(WaitNode *Node) {
  WaitNode *Prev = nullptr;
  for (WaitNode *Cur = WaitHead; Cur; Prev = Cur, Cur = Cur->Next) {
    if (Cur != Node)
      continue;
    (Prev ? Prev->Next : WaitHead) = Cur->Next;
    if (WaitTail == Cur)
      WaitTail = Prev;
    Cur->Next = nullptr;
    --WaitLen;
    return;
  }
}

FatLock::WaitResult FatLock::wait(const ThreadContext &Thread,
                                  int64_t TimeoutNanos) {
  UniqueLock Guard(Mu);
  assert(Owner == Thread.index() && "wait by non-owner");
  ++Counters.Waits;
  // From here until reacquisition completes we are a user the
  // quiescence check must see, even while absent from the wait set and
  // the entry queue (the notify -> re-queue window).
  ++ThreadsInWait;

  WaitNode Node;
  Node.Entry.Pk = Thread.parker();
  (WaitTail ? WaitTail->Next : WaitHead) = &Node;
  WaitTail = &Node;
  ++WaitLen;
  uint32_t SavedHold = Hold;

  // Release the monitor completely (Java semantics: all holds at once)
  // and hand it to the entry-queue head.
  Owner = 0;
  Hold = 0;
  Parker *Next = entryHandoffTarget();

  bool HasDeadline = TimeoutNanos >= 0;
  auto Deadline = std::chrono::steady_clock::time_point();
  if (HasDeadline)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::nanoseconds(TimeoutNanos);
  // Two-phase sleep on one park site.  Phase 1: in the wait set, parked
  // until notified (morphed onto the entry queue) or timed out.  Phase 2:
  // morphed, parked until the handoff that makes us claimable — the
  // deadline no longer applies, reacquisition is unbounded like any
  // lock().  Only a timeout leaves the loop unacquired.
  bool WasNotified = false;
  bool Granted = false;
  bool CountedContention = false;
  Parker::WakeReason Reason = Parker::WakeReason::Spurious;
  for (;;) {
    if (Node.Notified) {
      WasNotified = true;
      if (claimable(&Node.Entry)) {
        ++Counters.Acquisitions;
        grantTo(&Node.Entry, Thread.index());
        Granted = true;
        break;
      }
      if (!CountedContention) {
        ++Counters.ContendedAcquisitions;
        CountedContention = true;
      }
    } else if (HasDeadline && (Reason == Parker::WakeReason::TimedOut ||
                               std::chrono::steady_clock::now() >= Deadline)) {
      removeWaiter(&Node);
      ++Counters.Timeouts;
      break;
    }
    bool Morphed = Node.Notified;
    Guard.unlock();
    if (Next) {
      Next->unpark();
      Next = nullptr;
    }
    // A wake racing this window leaves a sticky token; stale tokens and
    // spurious wakes just re-run the check.
    Reason = (HasDeadline && !Morphed) ? Node.Entry.Pk->parkUntil(Deadline)
                                       : Node.Entry.Pk->park();
    Guard.lock();
  }
  if (!Granted) {
    // Timed out in the wait set: reacquire through the entry queue like
    // any other entrant.
    ++Counters.Acquisitions;
    acquireSlow(Guard, Thread);
  }
  Hold = SavedHold;
  assert(ThreadsInWait > 0 && "wait bookkeeping out of balance");
  --ThreadsInWait;
  return WasNotified ? WaitResult::Notified : WaitResult::TimedOut;
}

bool FatLock::notify(const ThreadContext &Thread) {
  LockGuard Guard(Mu);
  assert(Owner == Thread.index() && "notify by non-owner");
  ++Counters.Notifies;
  if (!WaitHead)
    return false;
  // Wait morphing: move the longest waiter from the wait set to the
  // entry-queue tail without waking it.  The notifier still holds the
  // monitor, so the waiter could not acquire anyway; it sleeps through
  // until the handoff that grants it, costing one block instead of two.
  WaitNode *Node = WaitHead;
  removeWaiter(Node);
  Node->Notified = true;
  pushEntry(&Node->Entry);
  return true;
}

uint32_t FatLock::notifyAll(const ThreadContext &Thread) {
  LockGuard Guard(Mu);
  assert(Owner == Thread.index() && "notifyAll by non-owner");
  ++Counters.Notifies;
  // Morph the whole wait set onto the entry queue in FIFO order — no
  // thundering herd: each waiter sleeps through until the release that
  // makes it the claimable head, so a broadcast of N waiters costs zero
  // wakes here and exactly one block per waiter overall.  (Prewaking the
  // morphed set was tried and measured worse on both wall and CPU time:
  // the waiters wake before their turn, re-park, and the broadcast pays
  // N futex wakes up front for nothing.)
  uint32_t Moved = 0;
  while (WaitNode *Node = WaitHead) {
    removeWaiter(Node);
    Node->Notified = true;
    pushEntry(&Node->Entry);
    ++Moved;
  }
  return Moved;
}

bool FatLock::heldBy(const ThreadContext &Thread) const {
  LockGuard Guard(Mu);
  return Owner == Thread.index() && Thread.isValid();
}

uint16_t FatLock::ownerIndex() const {
  LockGuard Guard(Mu);
  return Owner;
}

uint32_t FatLock::holdCount() const {
  LockGuard Guard(Mu);
  return Hold;
}

uint32_t FatLock::entryQueueLength() const {
  LockGuard Guard(Mu);
  return EntryLen;
}

uint32_t FatLock::waitSetSize() const {
  LockGuard Guard(Mu);
  return WaitLen;
}

FatLockStats FatLock::stats() const {
  LockGuard Guard(Mu);
  return Counters;
}

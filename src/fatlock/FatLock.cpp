//===- fatlock/FatLock.cpp - Heavy-weight Java monitor --------------------===//

#include "fatlock/FatLock.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace thinlocks;

void FatLock::skipAbandonedTickets() {
  // Linear scan is fine: abandonments are timeout events, so the vector
  // is empty in any healthy schedule.
  bool Advanced = true;
  while (Advanced && !AbandonedTickets.empty()) {
    Advanced = false;
    for (size_t I = 0; I < AbandonedTickets.size(); ++I) {
      if (AbandonedTickets[I] == ServingTicket) {
        AbandonedTickets.erase(AbandonedTickets.begin() +
                               static_cast<ptrdiff_t>(I));
        ++ServingTicket;
        Advanced = true;
        break;
      }
    }
  }
}

void FatLock::acquireSlow(std::unique_lock<std::mutex> &Guard,
                          uint16_t Index) {
  uint64_t Ticket = NextTicket++;
  if (Owner != 0 || ServingTicket != Ticket)
    ++Counters.ContendedAcquisitions;
  EntryCv.wait(Guard, [&] {
    skipAbandonedTickets();
    return Owner == 0 && ServingTicket == Ticket;
  });
  Owner = Index;
  ++ServingTicket;
}

void FatLock::lock(const ThreadContext &Thread) {
  assert(Thread.isValid() && "locking with an unattached thread");
  std::unique_lock<std::mutex> Guard(Mutex);
  assert(!Retired && "locking a retired (deflated) monitor");
  ++Counters.Acquisitions;
  if (Owner == Thread.index()) {
    ++Hold;
    return;
  }
  acquireSlow(Guard, Thread.index());
  Hold = 1;
}

bool FatLock::lockIfLive(const ThreadContext &Thread) {
  assert(Thread.isValid() && "locking with an unattached thread");
  std::unique_lock<std::mutex> Guard(Mutex);
  if (Retired)
    return false;
  ++Counters.Acquisitions;
  if (Owner == Thread.index()) {
    ++Hold;
    return true;
  }
  // Retirement requires an empty entry queue, so taking a ticket below
  // guarantees the monitor stays live until we acquire it.
  acquireSlow(Guard, Thread.index());
  Hold = 1;
  return true;
}

FatLock::TimedResult FatLock::lockIfLiveFor(const ThreadContext &Thread,
                                            int64_t TimeoutNanos) {
  assert(Thread.isValid() && "locking with an unattached thread");
  std::unique_lock<std::mutex> Guard(Mutex);
  if (Retired)
    return TimedResult::Retired;
  if (Owner == Thread.index()) {
    ++Counters.Acquisitions;
    ++Hold;
    return TimedResult::Acquired;
  }
  if (TimeoutNanos < 0) {
    ++Counters.Acquisitions;
    acquireSlow(Guard, Thread.index());
    Hold = 1;
    return TimedResult::Acquired;
  }
  skipAbandonedTickets();
  if (Owner == 0 && ServingTicket == NextTicket) {
    // Uncontended: acquire without the timed machinery (wait_for reads
    // the clock up front even when the predicate is already true, which
    // would tax every post-inflation acquisition).
    ++Counters.Acquisitions;
    ++NextTicket;
    ++ServingTicket;
    Owner = Thread.index();
    Hold = 1;
    return TimedResult::Acquired;
  }
  // As in lockIfLive: holding a ticket blocks retirement, so the monitor
  // stays live until we either acquire or abandon.
  uint64_t Ticket = NextTicket++;
  if (Owner != 0 || ServingTicket != Ticket)
    ++Counters.ContendedAcquisitions;
  bool Served =
      EntryCv.wait_for(Guard, std::chrono::nanoseconds(TimeoutNanos), [&] {
        skipAbandonedTickets();
        return Owner == 0 && ServingTicket == Ticket;
      });
  if (!Served) {
    ++Counters.Timeouts;
    // Abandon the ticket so later entrants are not stranded behind a
    // thread that gave up; whoever next touches the FIFO skips it.
    AbandonedTickets.push_back(Ticket);
    EntryCv.notify_all();
    return TimedResult::TimedOut;
  }
  ++Counters.Acquisitions;
  Owner = Thread.index();
  ++ServingTicket;
  Hold = 1;
  return TimedResult::Acquired;
}

FatLock::ReleaseResult
FatLock::unlockAndTryRetire(const ThreadContext &Thread) {
  std::unique_lock<std::mutex> Guard(Mutex);
  if (Owner != Thread.index())
    return ReleaseResult::NotOwner;
  assert(Hold > 0 && "owner with zero hold count");
  skipAbandonedTickets();
  if (Hold == 1 && !Pinned && ServingTicket == NextTicket &&
      ThreadsInWait == 0) {
    // Fully quiescent: nobody is queued (tickets drained) and nobody is
    // waiting.  Retire instead of releasing; late arrivals that already
    // resolved this monitor bounce out of lockIfLive() and re-read the
    // object's lock word.
    Hold = 0;
    Owner = 0;
    Retired = true;
    return ReleaseResult::RetiredNow;
  }
  if (--Hold == 0) {
    Owner = 0;
    EntryCv.notify_all();
  }
  return ReleaseResult::Released;
}

bool FatLock::isRetired() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Retired;
}

bool FatLock::tryLock(const ThreadContext &Thread) {
  TryResult Result = tryLockStatus(Thread);
  assert(Result != TryResult::Retired &&
         "tryLock on a retired (deflated) monitor");
  return Result == TryResult::Acquired;
}

FatLock::TryResult FatLock::tryLockStatus(const ThreadContext &Thread) {
  assert(Thread.isValid() && "locking with an unattached thread");
  std::unique_lock<std::mutex> Guard(Mutex);
  if (Retired)
    return TryResult::Retired;
  if (Owner == Thread.index()) {
    ++Counters.Acquisitions;
    ++Hold;
    return TryResult::Acquired;
  }
  skipAbandonedTickets();
  if (Owner != 0 || ServingTicket != NextTicket)
    return TryResult::Busy;
  ++Counters.Acquisitions;
  ++NextTicket;
  ++ServingTicket;
  Owner = Thread.index();
  Hold = 1;
  return TryResult::Acquired;
}

void FatLock::lockWithCount(const ThreadContext &Thread, uint32_t Count) {
  assert(Thread.isValid() && "locking with an unattached thread");
  assert(Count > 0 && "inflation transfers at least one hold");
  std::unique_lock<std::mutex> Guard(Mutex);
  assert(Owner == 0 && ServingTicket == NextTicket &&
         "inflation target must be a fresh, unpublished monitor");
  ++Counters.Acquisitions;
  ++NextTicket;
  ++ServingTicket;
  Owner = Thread.index();
  Hold = Count;
}

void FatLock::lockMergingCount(const ThreadContext &Thread, uint32_t Count) {
  assert(Thread.isValid() && "locking with an unattached thread");
  assert(Count > 0 && "inflation transfers at least one hold");
  std::unique_lock<std::mutex> Guard(Mutex);
  assert(!Retired && "emergency monitor must be pinned, never retired");
  ++Counters.Acquisitions;
  if (Owner == Thread.index()) {
    // This thread already routed another object's inflation here: merge
    // the transferred holds so lock/unlock pairs stay balanced.
    Hold += Count;
    return;
  }
  acquireSlow(Guard, Thread.index());
  Hold = Count;
}

void FatLock::pin() {
  std::lock_guard<std::mutex> Guard(Mutex);
  Pinned = true;
}

bool FatLock::isPinned() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Pinned;
}

void FatLock::unlock(const ThreadContext &Thread) {
  [[maybe_unused]] bool Ok = unlockChecked(Thread);
  assert(Ok && "unlock by non-owner");
}

bool FatLock::unlockChecked(const ThreadContext &Thread) {
  std::unique_lock<std::mutex> Guard(Mutex);
  if (Owner != Thread.index())
    return false;
  assert(Hold > 0 && "owner with zero hold count");
  if (--Hold == 0) {
    Owner = 0;
    // FIFO handoff: only the serving ticket's thread can proceed, but we
    // must wake everyone so it finds out.
    EntryCv.notify_all();
  }
  return true;
}

void FatLock::removeWaiter(WaitNode *Node) {
  auto It = std::find(WaitSet.begin(), WaitSet.end(), Node);
  if (It != WaitSet.end())
    WaitSet.erase(It);
}

FatLock::WaitResult FatLock::wait(const ThreadContext &Thread,
                                  int64_t TimeoutNanos) {
  std::unique_lock<std::mutex> Guard(Mutex);
  assert(Owner == Thread.index() && "wait by non-owner");
  ++Counters.Waits;
  // From here until reacquisition completes we are a user the
  // quiescence check must see, even while absent from WaitSet and the
  // ticket queue (the notify -> re-queue window).
  ++ThreadsInWait;

  WaitNode Node;
  WaitSet.push_back(&Node);
  uint32_t SavedHold = Hold;

  // Release the monitor completely (Java semantics: all holds at once).
  Owner = 0;
  Hold = 0;
  EntryCv.notify_all();

  if (TimeoutNanos < 0) {
    Node.Cv.wait(Guard, [&] { return Node.Notified; });
  } else {
    bool InTime = Node.Cv.wait_for(Guard,
                                   std::chrono::nanoseconds(TimeoutNanos),
                                   [&] { return Node.Notified; });
    if (!InTime) {
      removeWaiter(&Node);
      ++Counters.Timeouts;
    }
  }
  bool WasNotified = Node.Notified;

  // Reacquire through the FIFO entry queue, restoring the hold count.
  ++Counters.Acquisitions;
  acquireSlow(Guard, Thread.index());
  Hold = SavedHold;
  assert(ThreadsInWait > 0 && "wait bookkeeping out of balance");
  --ThreadsInWait;
  return WasNotified ? WaitResult::Notified : WaitResult::TimedOut;
}

bool FatLock::notify(const ThreadContext &Thread) {
  std::unique_lock<std::mutex> Guard(Mutex);
  assert(Owner == Thread.index() && "notify by non-owner");
  ++Counters.Notifies;
  if (WaitSet.empty())
    return false;
  WaitNode *Node = WaitSet.front();
  WaitSet.erase(WaitSet.begin());
  Node->Notified = true;
  Node->Cv.notify_one();
  return true;
}

uint32_t FatLock::notifyAll(const ThreadContext &Thread) {
  std::unique_lock<std::mutex> Guard(Mutex);
  assert(Owner == Thread.index() && "notifyAll by non-owner");
  ++Counters.Notifies;
  uint32_t Woken = static_cast<uint32_t>(WaitSet.size());
  for (WaitNode *Node : WaitSet) {
    Node->Notified = true;
    Node->Cv.notify_one();
  }
  WaitSet.clear();
  return Woken;
}

bool FatLock::heldBy(const ThreadContext &Thread) const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Owner == Thread.index() && Thread.isValid();
}

uint16_t FatLock::ownerIndex() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Owner;
}

uint32_t FatLock::holdCount() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Hold;
}

uint32_t FatLock::entryQueueLength() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return static_cast<uint32_t>(NextTicket - ServingTicket);
}

uint32_t FatLock::waitSetSize() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return static_cast<uint32_t>(WaitSet.size());
}

FatLockStats FatLock::stats() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Counters;
}

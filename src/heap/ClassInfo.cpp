//===- heap/ClassInfo.cpp - Runtime class descriptors ---------------------===//

#include "heap/ClassInfo.h"

#include <cassert>

using namespace thinlocks;

ClassRegistry::ClassRegistry() = default;

const ClassInfo &ClassRegistry::registerClass(std::string Name,
                                              uint32_t SlotCount) {
  std::lock_guard<std::mutex> Guard(Mutex);
  assert(Classes.size() <= MaxClassIndex && "class index space exhausted");
  auto Info = std::make_unique<ClassInfo>();
  Info->Index = static_cast<uint32_t>(Classes.size());
  Info->Name = std::move(Name);
  Info->SlotCount = SlotCount;
  Classes.push_back(std::move(Info));
  return *Classes.back();
}

const ClassInfo &ClassRegistry::classAt(uint32_t Index) const {
  std::lock_guard<std::mutex> Guard(Mutex);
  assert(Index < Classes.size() && "class index out of range");
  return *Classes[Index];
}

uint32_t ClassRegistry::size() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return static_cast<uint32_t>(Classes.size());
}

//===- heap/Heap.cpp - Arena allocator for objects ------------------------===//

#include "heap/Heap.h"

#include "support/MathExtras.h"
#include "support/SplitMix64.h"

#include <cassert>
#include <cstring>
#include <new>

using namespace thinlocks;

Heap::Heap(size_t BlockBytes) : BlockBytes(BlockBytes) {
  assert(BlockBytes >= 4096 && "block size unreasonably small");
}

Heap::~Heap() = default;

Object *Heap::allocate(const ClassInfo &Class) {
  size_t Size = sizeof(Object) + sizeof(uint64_t) * Class.SlotCount;
  Size = alignTo(Size, alignof(Object));

  char *Memory = nullptr;
  uint32_t Hash = 0;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    size_t Need = Size > BlockBytes ? Size : BlockBytes;
    if (Blocks.empty() || Blocks.back().Used + Size > Blocks.back().Capacity) {
      Block NewBlock;
      NewBlock.Storage = std::make_unique<char[]>(Need);
      NewBlock.Capacity = Need;
      Blocks.push_back(std::move(NewBlock));
    }
    Block &Current = Blocks.back();
    Memory = Current.Storage.get() + Current.Used;
    Current.Used += Size;

    SplitMix64 Rng(HashSeed);
    Hash = static_cast<uint32_t>(Rng.next());
    HashSeed = Rng.next();
  }

  Object *Obj = new (Memory) Object(Class.Index, Class.SlotCount, Hash);
  std::memset(Obj->slots(), 0, sizeof(uint64_t) * Class.SlotCount);

  AllocatedCount.fetch_add(1, std::memory_order_relaxed);
  AllocatedBytes.fetch_add(Size, std::memory_order_relaxed);
  return Obj;
}

void Heap::forEachObject(
    const std::function<void(const Object &)> &Fn) const {
  std::lock_guard<std::mutex> Guard(Mutex);
  for (const Block &B : Blocks) {
    size_t Offset = 0;
    while (Offset < B.Used) {
      const Object *Obj =
          reinterpret_cast<const Object *>(B.Storage.get() + Offset);
      Fn(*Obj);
      // Objects are laid out back to back; the class registry knows each
      // one's slot count, which determines its footprint.
      size_t Size = sizeof(Object) +
                    sizeof(uint64_t) * Registry.classAt(Obj->classIndex()).SlotCount;
      Offset += alignTo(Size, alignof(Object));
    }
  }
}

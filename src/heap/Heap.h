//===- heap/Heap.h - Arena allocator for objects ---------------*- C++ -*-===//
///
/// \file
/// A simple non-moving arena heap.  There is no garbage collector: the
/// paper's JDK collector is stop-the-world (the lock word relies on the 8
/// shared header bits only changing "when an object is moved", and the
/// collector is not concurrent), so a non-moving arena preserves every
/// invariant the locking code depends on.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_HEAP_HEAP_H
#define THINLOCKS_HEAP_HEAP_H

#include "heap/ClassInfo.h"
#include "heap/Object.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace thinlocks {

/// Owns object storage and the class registry.  Allocation is
/// thread-safe; objects live until the heap is destroyed.
class Heap {
public:
  /// \param BlockBytes arena block size (rounded up to hold any object).
  explicit Heap(size_t BlockBytes = 1u << 20);
  ~Heap();

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// \returns the class registry backing this heap's objects.
  ClassRegistry &classes() { return Registry; }
  const ClassRegistry &classes() const { return Registry; }

  /// Allocates an instance of \p Class with zeroed slots.
  Object *allocate(const ClassInfo &Class);

  /// Visits every live object, oldest first.  Holds the heap mutex for
  /// the duration: \p Fn must not allocate from this heap.  Lock words
  /// read during the walk are racy snapshots (they are atomics; owners
  /// may be mutating them), which is exactly what the lock-census and
  /// index-audit consumers want.
  void forEachObject(const std::function<void(const Object &)> &Fn) const;

  /// \returns the class of \p Obj.
  const ClassInfo &classOf(const Object &Obj) const {
    return Registry.classAt(Obj.classIndex());
  }

  /// \returns total objects ever allocated (paper Table 1, "Objects").
  uint64_t objectsAllocated() const {
    return AllocatedCount.load(std::memory_order_relaxed);
  }

  /// \returns total bytes handed out to objects.
  uint64_t bytesAllocated() const {
    return AllocatedBytes.load(std::memory_order_relaxed);
  }

private:
  struct Block {
    std::unique_ptr<char[]> Storage;
    size_t Used = 0;
    size_t Capacity = 0;
  };

  mutable std::mutex Mutex;
  ClassRegistry Registry;
  std::vector<Block> Blocks;
  size_t BlockBytes;
  std::atomic<uint64_t> AllocatedCount{0};
  std::atomic<uint64_t> AllocatedBytes{0};
  uint64_t HashSeed = 0x243f6a8885a308d3ull;
};

} // namespace thinlocks

#endif // THINLOCKS_HEAP_HEAP_H

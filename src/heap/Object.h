//===- heap/Object.h - Object layout with embedded lock word ---*- C++ -*-===//
///
/// \file
/// The object layout of paper Figure 1(a): a three-word header followed by
/// data.  Word 1 is the lock word: its high 24 bits are the lock field and
/// its low 8 bits are other header data (here: the low byte of the
/// identity hash) that the locking code must treat as constant and
/// preserve.  Reserving those 24 bits — rather than adding a word — is the
/// paper's central space constraint: *object size is not increased*.
///
/// Header layout (all words 32-bit, as on the paper's 32-bit JVM):
///   word 0: class index (24 bits) | debug flags (8 bits)
///   word 1: lock field (24 bits)  | hash low byte (8 bits)   <- atomic
///   word 2: identity hash (32 bits)
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_HEAP_OBJECT_H
#define THINLOCKS_HEAP_OBJECT_H

#include <atomic>
#include <cassert>
#include <cstdint>

namespace thinlocks {

class Heap;

/// A heap object: 3-word header plus \c SlotCount 64-bit data slots that
/// immediately follow the header in memory.  Objects are created only by
/// Heap::allocate and never move (the paper's collector is not concurrent;
/// ours does not exist).
class Object {
  friend class Heap;

  static constexpr uint32_t ClassIndexMask = 0x00FFFFFFu;
  static constexpr uint32_t HashByteMask = 0x000000FFu;

  uint32_t ClassWord;
  std::atomic<uint32_t> LockWord;
  uint32_t HashWord;
  uint32_t Padding; // Aligns the 64-bit slot array that follows.

  Object(uint32_t ClassIndex, uint32_t DebugSlotCount, uint32_t Hash)
      : ClassWord((ClassIndex & ClassIndexMask) |
                  ((DebugSlotCount > 255 ? 255 : DebugSlotCount) << 24)),
        LockWord(Hash & HashByteMask), HashWord(Hash), Padding(0) {}

public:
  Object(const Object &) = delete;
  Object &operator=(const Object &) = delete;

  /// \returns the class registry index of this object's class.
  uint32_t classIndex() const { return ClassWord & ClassIndexMask; }

  /// \returns the identity hash code (stable for the object's lifetime).
  uint32_t identityHash() const { return HashWord; }

  /// \returns the atomic lock word.  Locking protocols own the high 24
  /// bits; the low 8 bits are header data they must preserve unchanged.
  std::atomic<uint32_t> &lockWord() { return LockWord; }
  const std::atomic<uint32_t> &lockWord() const { return LockWord; }

  /// \returns the 8 header bits that share the lock word; the locking
  /// protocols must keep exactly these bits in the low byte at all times.
  uint32_t headerBits() const { return HashWord & HashByteMask; }

  /// Reads data slot \p Index.
  uint64_t slot(uint32_t Index) const {
    assert(Index < debugSlotCount() && "object field out of range");
    return slots()[Index];
  }

  /// Writes data slot \p Index.  Not synchronized; callers synchronize via
  /// the object's lock, which is the entire point of this library.
  void setSlot(uint32_t Index, uint64_t Value) {
    assert(Index < debugSlotCount() && "object field out of range");
    slots()[Index] = Value;
  }

  /// \returns the raw slot array (use with the class's SlotCount).
  uint64_t *slots() { return reinterpret_cast<uint64_t *>(this + 1); }
  const uint64_t *slots() const {
    return reinterpret_cast<const uint64_t *>(this + 1);
  }

private:
  // Slot count saturated to 255, carried in the flags byte purely so that
  // debug builds can bounds-check field accesses without a registry trip.
  uint32_t debugSlotCount() const {
    uint32_t Count = ClassWord >> 24;
    return Count == 255 ? UINT32_MAX : Count;
  }
};

static_assert(sizeof(Object) == 16, "object header must stay 3+1 words");

} // namespace thinlocks

#endif // THINLOCKS_HEAP_OBJECT_H

//===- heap/ClassInfo.h - Runtime class descriptors ------------*- C++ -*-===//
///
/// \file
/// Minimal runtime class metadata for heap objects.  A class is a name
/// plus a field-slot count; objects store a compact class *index* in their
/// header (the paper keeps a class pointer in the header and notes that
/// converting it to a class index is the only way to shrink the header
/// further — our header words are 32-bit, so we use the index form).
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_HEAP_CLASSINFO_H
#define THINLOCKS_HEAP_CLASSINFO_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace thinlocks {

/// Immutable description of one runtime class.
struct ClassInfo {
  /// Index into the owning ClassRegistry; stored in object headers.
  uint32_t Index = 0;
  std::string Name;
  /// Number of 64-bit field slots in instances of this class.
  uint32_t SlotCount = 0;
};

/// Interns ClassInfo records and maps header class indices back to them.
///
/// Lookup by index is lock-free after registration; registration takes a
/// mutex.  Class indices fit in 24 bits (they share a header word with 8
/// bits of flags).
class ClassRegistry {
public:
  static constexpr uint32_t MaxClassIndex = (1u << 24) - 1;

  ClassRegistry();

  ClassRegistry(const ClassRegistry &) = delete;
  ClassRegistry &operator=(const ClassRegistry &) = delete;

  /// Registers a new class.  Names need not be unique (anonymous workload
  /// classes reuse names); every call mints a fresh index.
  const ClassInfo &registerClass(std::string Name, uint32_t SlotCount);

  /// \returns the class for \p Index; asserts that the index is live.
  const ClassInfo &classAt(uint32_t Index) const;

  /// \returns the number of registered classes.
  uint32_t size() const;

private:
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<ClassInfo>> Classes;
};

} // namespace thinlocks

#endif // THINLOCKS_HEAP_CLASSINFO_H

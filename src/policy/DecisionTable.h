//===- policy/DecisionTable.h - Padded-shard decision lookup ---*- C++ -*-===//
///
/// \file
/// The lookup structure between the AdaptivePolicyEngine (one writer,
/// ticking on a sampling cadence) and the lock slow paths (many readers,
/// every contended acquire/release).  Requirements that shaped it:
///
///  - readers are lock-free and touch at most ProbeLimit cache lines:
///    a slow path must never block on the policy engine, and a missing
///    decision must be cheap (the common case for cold objects);
///  - shards are alignas(64)-padded so concurrent readers of *different*
///    hot objects do not false-share;
///  - one logical writer (the engine's tick serializes itself), so no
///    writer-writer synchronization exists — enforced by contract and
///    checked by the TSan stress test, not by a mutex.
///
/// Consistency model: decisions are HINTS.  A reader may observe a
/// just-erased key for one probe, or — when a tombstoned slot is reused
/// for a different key between a reader's key and value loads — a value
/// briefly attributed to the wrong key.  Both races hand a reader a
/// stale or default policy, which changes spin depth or an inflation
/// decision, never correctness of the lock protocol itself.  This is the
/// same benign-ABA argument MonitorTable makes for stale fat words, and
/// it is what lets the read side stay wait-free.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_POLICY_DECISIONTABLE_H
#define THINLOCKS_POLICY_DECISIONTABLE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace thinlocks {
namespace policy {

/// Open-addressed, sharded {u64 key -> u32 packed LockPolicy} map with
/// wait-free readers and a single external writer.
class DecisionTable {
public:
  /// Shard count (power of two).  16 matches MonitorTable's allocation
  /// sharding: enough to spread the handful of simultaneously-hot
  /// objects across lines without bloating the table.
  static constexpr size_t NumShards = 16;
  /// Bounded linear probe: a lookup or publish inspects at most this
  /// many slots before giving up.  Misses stay O(1) under adversarial
  /// hashing; publish failures are counted by the engine, not hidden.
  static constexpr size_t ProbeLimit = 16;

  /// \param SlotsPerShard capacity of each shard (rounded up to a power
  /// of two, minimum ProbeLimit).  The default comfortably holds the
  /// engine's TopObjects working set at <50% load factor.
  explicit DecisionTable(size_t SlotsPerShard = 64);

  DecisionTable(const DecisionTable &) = delete;
  DecisionTable &operator=(const DecisionTable &) = delete;

  /// Wait-free reader: \returns the packed policy for \p Key, or 0 when
  /// no decision is published.  \p Key must be nonzero.
  uint32_t lookup(uint64_t Key) const;

  /// Writer (engine only): publishes \p Packed for \p Key, inserting or
  /// updating.  \p Packed must be nonzero (a default policy is expressed
  /// by erase()).  \returns false when the probe window is full of other
  /// live keys — the caller counts the failure and retries next tick.
  bool publish(uint64_t Key, uint32_t Packed);

  /// Writer (engine only): removes \p Key's decision if present.
  /// \returns true when a decision was removed.
  bool erase(uint64_t Key);

  /// \returns the number of live decisions (racy snapshot).
  size_t size() const { return Live.load(std::memory_order_relaxed); }

private:
  /// Slot keys: 0 = never used (terminates reader probes), Tombstone =
  /// erased (readers skip, writer may reuse).
  static constexpr uint64_t Tombstone = ~0ull;

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> Keys;
    std::unique_ptr<std::atomic<uint32_t>[]> Values;
  };

  /// Finalizer-style mix so near-identical keys (object addresses share
  /// high bits; class keys are tiny integers) spread over shards/slots.
  static uint64_t mix(uint64_t Key) {
    Key ^= Key >> 33;
    Key *= 0xff51afd7ed558ccdull;
    Key ^= Key >> 33;
    Key *= 0xc4ceb9fe1a85ec53ull;
    Key ^= Key >> 33;
    return Key;
  }

  Shard &shardFor(uint64_t Hash) { return Shards[Hash & (NumShards - 1)]; }
  const Shard &shardFor(uint64_t Hash) const {
    return Shards[Hash & (NumShards - 1)];
  }

  Shard Shards[NumShards];
  size_t SlotMask; ///< SlotsPerShard - 1 (power of two).
  std::atomic<size_t> Live{0};
};

} // namespace policy
} // namespace thinlocks

#endif // THINLOCKS_POLICY_DECISIONTABLE_H

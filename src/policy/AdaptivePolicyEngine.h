//===- policy/AdaptivePolicyEngine.h - Profiler->policy loop ---*- C++ -*-===//
///
/// \file
/// The online policy engine that closes the loop between the hot-lock
/// profiler (obs/LockEventCollector) and the lock slow paths (DESIGN.md
/// §13).  A tick — driven by whoever owns the sampling cadence: the soak
/// harness's ticker, a bench driver, a VM housekeeping thread — drains
/// the collector, diffs the cumulative per-object/per-class aggregates
/// against the previous tick's baselines, classifies each active object,
/// and publishes LockPolicy decisions into a PolicyStore:
///
///   fast-release contention  -> SpinClass::Deep   (spin longer, win the
///                                                  word without parking)
///   convoy-prone contention  -> SpinClass::ParkEarly (stop burning the
///                                                  owner's CPU quantum)
///   inflate/deflate thrash   -> KeepFat + EagerInflate (restore the
///                                                  paper's permanence
///                                                  selectively)
///   cold inflated objects    -> speculative deflation via the FatLock
///                                                  retirement machinery
///
/// Decisions are dwell-gated in both directions (hysteresis): a
/// classification must hold for PromoteDwellTicks consecutive ticks
/// before it is published and DemoteDwellTicks before an active object's
/// decision is weakened, and a cold object's decision is only expired
/// after ColdTicks idle ticks — so churn at the classification boundary
/// cannot make the published table oscillate.
///
/// Threading: tick() serializes itself (concurrent callers queue on an
/// internal mutex); PolicyStore reads stay wait-free and never touch
/// that mutex.  The engine is the store's single writer.
///
/// Speculative deflation dereferences tracked object addresses, so it is
/// OFF by default: enabling PolicyConfig::SpeculativeDeflation is the
/// caller's assertion that every object whose events reach the collector
/// outlives the engine (true for the soak harness and the benches, which
/// own their heaps; a VM would gate this on its GC epoch).
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_POLICY_ADAPTIVEPOLICYENGINE_H
#define THINLOCKS_POLICY_ADAPTIVEPOLICYENGINE_H

#include "policy/PolicyStore.h"
#include "support/Mutex.h"

#include <cstdint>
#include <unordered_map>

namespace thinlocks {

class MonitorTable;
class ThreadContext;

namespace obs {
class LockEventCollector;
} // namespace obs

namespace policy {

/// Classification thresholds and dwell constants.  Defaults are tuned
/// for the repo's 1-CPU evaluation host at the soak harness's 10ms tick
/// cadence; the bench drives ticks per contention burst instead, which
/// the dwell logic is deliberately insensitive to (it counts ticks, not
/// time).
struct PolicyConfig {
  /// How many profiler rows a tick examines.
  size_t TopObjects = 128;
  size_t TopClasses = 16;
  /// Mean blocked-ns per contended acquire at or below which the owner
  /// counts as fast-release (-> Deep spin).
  uint64_t FastReleaseMeanNanos = 5'000;
  /// Mean blocked-ns per contended acquire at or above which the object
  /// counts as convoy-prone (-> ParkEarly).
  uint64_t ConvoyMeanNanos = 100'000;
  /// Inflations+deflations delta within one tick at or above which the
  /// object counts as thrashing (-> KeepFat + EagerInflate).
  uint64_t ReinflateThreshold = 2;
  /// Consecutive ticks a non-default classification must hold before it
  /// is published.
  unsigned PromoteDwellTicks = 3;
  /// Consecutive ticks a *weaker* classification must hold before an
  /// active object's published decision is downgraded.
  unsigned DemoteDwellTicks = 6;
  /// Idle ticks after which a tracked object is cold: its decision is
  /// expired and it becomes a deflation candidate.  (Cold expiry uses
  /// this as its dwell; tracking state is dropped after 2x.)
  unsigned ColdTicks = 8;
  /// Only classes with at least this many distinct profiled objects get
  /// a class-level decision (below it, per-object entries suffice).
  uint64_t MinClassObjects = 4;
  /// Retire cold objects' quiescent fat locks.  OFF by default: see the
  /// file comment for the object-lifetime contract this asserts.
  bool SpeculativeDeflation = false;
  /// Deflation candidates examined per tick (bounds tick latency).
  size_t DeflateScanLimit = 32;
};

/// The engine's decision ledger (mutually consistent snapshot via
/// counters()).
struct PolicyCounters {
  uint64_t Ticks = 0;
  /// Decision publishes that introduced or strengthened a policy.
  uint64_t Promotions = 0;
  /// Dwell-gated downgrades of still-active objects.
  uint64_t Demotions = 0;
  /// Cold-object decision expiries.
  uint64_t Expiries = 0;
  /// Cumulative publishes carrying each lever.
  uint64_t DeepSpinDecisions = 0;
  uint64_t ParkEarlyDecisions = 0;
  uint64_t KeepFatDecisions = 0;
  /// Class-level decision publishes / erases.
  uint64_t ClassPromotions = 0;
  uint64_t ClassDemotions = 0;
  /// Cold fat locks retired by the engine's scan.
  uint64_t SpeculativeDeflations = 0;
  /// Candidates examined by the scan (including unsuccessful).
  uint64_t DeflationScans = 0;
  /// publish() refusals on a full probe window (retried next tick).
  uint64_t PublishFailures = 0;
  /// Objects currently tracked (baseline + dwell state held).
  uint64_t ObjectsTracked = 0;
};

class AdaptivePolicyEngine {
public:
  /// \param Collector the profiler to consume (tick() drains it).
  /// \param Monitors the table whose fat locks the deflation scan may
  /// retire (and whose retirement ledger it feeds).
  AdaptivePolicyEngine(obs::LockEventCollector &Collector,
                       MonitorTable &Monitors,
                       PolicyConfig Config = PolicyConfig());

  AdaptivePolicyEngine(const AdaptivePolicyEngine &) = delete;
  AdaptivePolicyEngine &operator=(const AdaptivePolicyEngine &) = delete;

  /// The store slow paths consult (wire via
  /// ThinLockImpl::setPolicyStore).  Wait-free reads; valid for the
  /// engine's lifetime.
  const PolicyStore &policyStore() const { return Store; }

  /// One sampling step: drain the profiler, reclassify, publish.  Safe
  /// from any thread; concurrent calls serialize.  \p Recorder, when
  /// non-null and tracing is enabled, receives PolicyDecision (and
  /// deflation's Deflate) events into its ring so decisions land in the
  /// same timeline as the contention they answer.
  void tick(const ThreadContext *Recorder = nullptr) TL_EXCLUDES(Mu);

  PolicyCounters counters() const TL_EXCLUDES(Mu);

  const PolicyConfig &config() const { return Config; }

private:
  /// Per-key dwell state and cumulative baselines as of the last tick.
  struct Tracked {
    uint32_t ClassIndex = 0;
    uint64_t BlockedNanos = 0;
    uint64_t ContendedAcquires = 0;
    uint64_t Inflations = 0;
    uint64_t Deflations = 0;
    uint64_t Parks = 0;
    LockPolicy Published;
    LockPolicy Desired;
    unsigned DesiredStreak = 0;
    unsigned IdleTicks = 0;
    bool Seeded = false;
  };

  /// One tick's activity deltas for a key (object or class).
  struct Deltas {
    uint64_t Blocked = 0;
    uint64_t Contended = 0;
    uint64_t Inflations = 0;
    uint64_t Deflations = 0;
    uint64_t Parks = 0;
    bool active() const {
      return (Blocked | Contended | Inflations | Deflations | Parks) != 0;
    }
  };

  LockPolicy classify(const Deltas &D) const;
  /// One key's dwell/publish step for this tick.  \p Key is the object
  /// address (or class index when \p IsClass).
  void stepKey(Tracked &T, const Deltas &D, uint64_t Key, bool IsClass,
               const ThreadContext *Recorder) TL_REQUIRES(Mu);
  /// Advances \p T's dwell state toward \p Desired; \returns true when
  /// the published decision must change to \p T.Desired now.  \p Cold
  /// marks a cold expiry, whose ColdTicks wait already served as dwell.
  bool advanceDwell(Tracked &T, LockPolicy Desired, bool Cold);
  void recordDecision(const ThreadContext *Recorder, uint64_t ObjectAddr,
                      uint32_t ClassIndex, LockPolicy Policy,
                      bool IsClass) const;
  void bumpLeverCounters(LockPolicy Policy) TL_REQUIRES(Mu);
  void deflateScan(const ThreadContext *Recorder) TL_REQUIRES(Mu);

  obs::LockEventCollector &Collector;
  MonitorTable &Monitors;
  const PolicyConfig Config;
  PolicyStore Store;

  mutable Mutex Mu;
  std::unordered_map<uint64_t, Tracked> Objects TL_GUARDED_BY(Mu);
  std::unordered_map<uint32_t, Tracked> Classes TL_GUARDED_BY(Mu);
  PolicyCounters Counters TL_GUARDED_BY(Mu);
};

} // namespace policy
} // namespace thinlocks

#endif // THINLOCKS_POLICY_ADAPTIVEPOLICYENGINE_H

//===- policy/DecisionTable.cpp - Padded-shard decision lookup ------------===//

#include "policy/DecisionTable.h"

#include <cassert>

using namespace thinlocks;
using namespace thinlocks::policy;

DecisionTable::DecisionTable(size_t SlotsPerShard) {
  size_t Slots = ProbeLimit;
  while (Slots < SlotsPerShard)
    Slots <<= 1;
  SlotMask = Slots - 1;
  for (Shard &S : Shards) {
    S.Keys = std::make_unique<std::atomic<uint64_t>[]>(Slots);
    S.Values = std::make_unique<std::atomic<uint32_t>[]>(Slots);
    for (size_t I = 0; I < Slots; ++I) {
      S.Keys[I].store(0, std::memory_order_relaxed);
      S.Values[I].store(0, std::memory_order_relaxed);
    }
  }
}

uint32_t DecisionTable::lookup(uint64_t Key) const {
  assert(Key != 0 && "key 0 is the empty-slot sentinel");
  uint64_t Hash = mix(Key);
  const Shard &S = shardFor(Hash);
  size_t Slot = (Hash >> 4) & SlotMask;
  for (size_t I = 0; I < ProbeLimit; ++I) {
    // Acquire pairs with publish()'s release key store: a reader that
    // sees the key also sees the value stored before it.
    uint64_t K = S.Keys[(Slot + I) & SlotMask].load(std::memory_order_acquire);
    if (K == Key)
      return S.Values[(Slot + I) & SlotMask].load(std::memory_order_acquire);
    if (K == 0)
      return 0; // Never-used slot terminates the probe chain.
    // Tombstones and other keys: keep probing.
  }
  return 0;
}

bool DecisionTable::publish(uint64_t Key, uint32_t Packed) {
  assert(Key != 0 && Key != Tombstone && "reserved key");
  assert(Packed != 0 && "default policies are expressed by erase()");
  uint64_t Hash = mix(Key);
  Shard &S = shardFor(Hash);
  size_t Slot = (Hash >> 4) & SlotMask;
  size_t Insert = SIZE_MAX;
  for (size_t I = 0; I < ProbeLimit; ++I) {
    size_t At = (Slot + I) & SlotMask;
    uint64_t K = S.Keys[At].load(std::memory_order_relaxed);
    if (K == Key) {
      // Update in place; release so a reader holding the key sees a
      // fully written value.
      S.Values[At].store(Packed, std::memory_order_release);
      return true;
    }
    if ((K == 0 || K == Tombstone) && Insert == SIZE_MAX)
      Insert = At;
    if (K == 0)
      break; // End of this key's probe chain: it is not in the table.
  }
  if (Insert == SIZE_MAX)
    return false; // Probe window full of other live keys.
  // Insert: value first (relaxed), then the key with release, so any
  // reader that observes the key observes the value.
  S.Values[Insert].store(Packed, std::memory_order_relaxed);
  S.Keys[Insert].store(Key, std::memory_order_release);
  Live.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool DecisionTable::erase(uint64_t Key) {
  assert(Key != 0 && Key != Tombstone && "reserved key");
  uint64_t Hash = mix(Key);
  Shard &S = shardFor(Hash);
  size_t Slot = (Hash >> 4) & SlotMask;
  for (size_t I = 0; I < ProbeLimit; ++I) {
    size_t At = (Slot + I) & SlotMask;
    uint64_t K = S.Keys[At].load(std::memory_order_relaxed);
    if (K == Key) {
      // Clear the value before tombstoning so a racing reader that
      // still wins the key load gets the default policy, not a stale
      // decision for a key the writer has moved past.
      S.Values[At].store(0, std::memory_order_relaxed);
      S.Keys[At].store(Tombstone, std::memory_order_release);
      Live.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    if (K == 0)
      return false;
  }
  return false;
}

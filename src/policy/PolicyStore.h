//===- policy/PolicyStore.h - Object + class decision store ----*- C++ -*-===//
///
/// \file
/// The read-side façade the lock slow paths consult: two DecisionTables
/// — one keyed by object address, one by class index — with the
/// object-specific decision taking precedence.  Per-class decisions let
/// the engine cover a popular class's long tail (every instance behaves
/// like the profiled ones) without publishing thousands of per-object
/// entries; a per-object decision overrides its class when one object's
/// behavior diverges.
///
/// Lookups are wait-free (see DecisionTable) and happen ONLY on slow
/// paths: the thin fast path never touches this structure — an invariant
/// tools/lint/fastpath_guard.py proves at the instruction level.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_POLICY_POLICYSTORE_H
#define THINLOCKS_POLICY_POLICYSTORE_H

#include "policy/DecisionTable.h"
#include "policy/LockPolicy.h"

namespace thinlocks {
namespace policy {

class PolicyStore {
public:
  PolicyStore() = default;
  PolicyStore(const PolicyStore &) = delete;
  PolicyStore &operator=(const PolicyStore &) = delete;

  /// Reader (slow paths): the effective policy for an object, object
  /// decision first, class decision as fallback.  \p ObjectAddr is the
  /// object's address; \p ClassIndex its class-registry index.
  LockPolicy forObject(uint64_t ObjectAddr, uint32_t ClassIndex) const {
    if (uint32_t Packed = Objects.lookup(ObjectAddr))
      return LockPolicy::unpack(Packed);
    if (uint32_t Packed = Classes.lookup(classKey(ClassIndex)))
      return LockPolicy::unpack(Packed);
    return LockPolicy();
  }

  /// Writer (engine only).  \returns false on a full probe window.
  bool publishObject(uint64_t ObjectAddr, LockPolicy Policy) {
    return Objects.publish(ObjectAddr, Policy.pack());
  }
  bool eraseObject(uint64_t ObjectAddr) { return Objects.erase(ObjectAddr); }
  bool publishClass(uint32_t ClassIndex, LockPolicy Policy) {
    return Classes.publish(classKey(ClassIndex), Policy.pack());
  }
  bool eraseClass(uint32_t ClassIndex) {
    return Classes.erase(classKey(ClassIndex));
  }

  /// Live decision counts (racy snapshots, for counters/tests).
  size_t objectDecisions() const { return Objects.size(); }
  size_t classDecisions() const { return Classes.size(); }

private:
  /// Class index 0 is a valid registry index but 0 is the table's
  /// empty sentinel; bias by one.
  static uint64_t classKey(uint32_t ClassIndex) {
    return static_cast<uint64_t>(ClassIndex) + 1;
  }

  DecisionTable Objects;
  DecisionTable Classes{16};
};

} // namespace policy
} // namespace thinlocks

#endif // THINLOCKS_POLICY_POLICYSTORE_H

//===- policy/LockPolicy.h - Per-object lock-lifecycle decision *- C++ -*-===//
///
/// \file
/// The decision vocabulary of the adaptive policy engine (DESIGN.md §13):
/// one small, packable record saying how the *slow paths* should treat a
/// particular object (or every instance of a class).  Three independent
/// levers, each grounded in a pathology the hot-lock profiler can see:
///
///   SpinClass  — which SpinWait ladder a contender escalates on.  Deep
///     for objects whose owners release quickly (mean blocked time per
///     contended acquire is small: spinning a little longer wins the
///     word without a park round trip); ParkEarly for convoy-prone
///     objects (large mean blocked time: pausing burns CPU the
///     descheduled owner needs — get to the park rung fast).
///
///   EagerInflate — the object re-inflates repeatedly, so the thin
///     contention dance (spin for the word, win the CAS, then inflate
///     anyway) is pure overhead; go fat at the first slow-path touch.
///
///   KeepFat — veto quiescent deflation.  The inflate/deflate thrash
///     the paper's permanence discipline avoids (§2.3) is re-created by
///     DeflationPolicy::WhenQuiescent on repeatedly-contended objects;
///     KeepFat restores permanence *selectively*, exactly where the
///     profiler has seen the thrash.
///
/// A default-constructed LockPolicy means "no decision": every lever at
/// its static default.  It packs to 0, which is also the DecisionTable's
/// "absent" encoding — the engine never publishes a default policy, it
/// erases the entry instead.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_POLICY_LOCKPOLICY_H
#define THINLOCKS_POLICY_LOCKPOLICY_H

#include "support/SpinWait.h"

#include <cstdint>

namespace thinlocks {
namespace policy {

/// Which contention escalation ladder a slow path should use.
enum class SpinClass : uint8_t {
  Default = 0,  ///< DefaultSpinPolicy (the tuned static ladder).
  Deep = 1,     ///< DeepSpinPolicy: fast-release owners; spin longer.
  ParkEarly = 2 ///< ParkEarlySpinPolicy: convoy-prone; park sooner.
};

/// One published decision.  Cheap to copy; slow paths receive it by
/// value from a PolicyStore lookup.
struct LockPolicy {
  SpinClass Spin = SpinClass::Default;
  bool EagerInflate = false;
  bool KeepFat = false;

  /// \returns true when every lever is at its static default (the
  /// "no decision" state; packs to 0).
  bool isDefault() const {
    return Spin == SpinClass::Default && !EagerInflate && !KeepFat;
  }

  /// Packs into a DecisionTable value word: bits [1:0] SpinClass,
  /// bit 2 EagerInflate, bit 3 KeepFat.  A default policy packs to 0,
  /// the table's "absent" encoding.
  uint32_t pack() const {
    return static_cast<uint32_t>(Spin) | (EagerInflate ? 4u : 0u) |
           (KeepFat ? 8u : 0u);
  }

  static LockPolicy unpack(uint32_t Packed) {
    LockPolicy P;
    P.Spin = static_cast<SpinClass>(Packed & 3u);
    P.EagerInflate = (Packed & 4u) != 0;
    P.KeepFat = (Packed & 8u) != 0;
    return P;
  }

  friend bool operator==(const LockPolicy &A, const LockPolicy &B) {
    return A.pack() == B.pack();
  }
  friend bool operator!=(const LockPolicy &A, const LockPolicy &B) {
    return !(A == B);
  }
};

/// Maps a SpinClass to the ladder the slow path should construct its
/// SpinWait from.  \p Fallback is the statically configured ladder
/// (ContentionOptions::Spin) used for SpinClass::Default, so a manager
/// with custom static tuning keeps it for undecided objects.
inline const SpinPolicy &spinPolicyFor(SpinClass Class,
                                       const SpinPolicy &Fallback) {
  switch (Class) {
  case SpinClass::Deep:
    return DeepSpinPolicy;
  case SpinClass::ParkEarly:
    return ParkEarlySpinPolicy;
  case SpinClass::Default:
    break;
  }
  return Fallback;
}

} // namespace policy
} // namespace thinlocks

#endif // THINLOCKS_POLICY_LOCKPOLICY_H

//===- policy/AdaptivePolicyEngine.cpp - Profiler->policy loop ------------===//

#include "policy/AdaptivePolicyEngine.h"

#include "core/LockWord.h"
#include "fatlock/FatLock.h"
#include "fatlock/MonitorTable.h"
#include "heap/Object.h"
#include "obs/EventRing.h"
#include "obs/LockEventCollector.h"
#include "obs/LockEvents.h"
#include "park/ParkingLot.h"
#include "threads/ThreadContext.h"

#include <unordered_set>

using namespace thinlocks;
using namespace thinlocks::policy;

namespace {

/// Cumulative counters can only grow, but a collector reset() between
/// ticks would make them shrink; clamp so a reset reads as "no activity"
/// rather than a huge unsigned wraparound.
uint64_t deltaOf(uint64_t Current, uint64_t Baseline) {
  return Current >= Baseline ? Current - Baseline : 0;
}

/// A transition is a demotion when it removes a lever the published
/// decision carries (full expiry to default is the extreme case);
/// switching one non-default spin class for another is a lateral move
/// and takes the promotion dwell.
bool isDemotion(LockPolicy From, LockPolicy To) {
  if ((From.KeepFat && !To.KeepFat) || (From.EagerInflate && !To.EagerInflate))
    return true;
  return From.Spin != SpinClass::Default && To.Spin == SpinClass::Default;
}

} // namespace

AdaptivePolicyEngine::AdaptivePolicyEngine(obs::LockEventCollector &Collector,
                                           MonitorTable &Monitors,
                                           PolicyConfig Config)
    : Collector(Collector), Monitors(Monitors), Config(Config) {}

LockPolicy AdaptivePolicyEngine::classify(const Deltas &D) const {
  LockPolicy P;
  // Thrash first: one inflate/deflate round trip per tick is already the
  // pathology §2.3 warns about, and it dominates any spin-depth tuning.
  if (D.Inflations + D.Deflations >= Config.ReinflateThreshold) {
    P.KeepFat = true;
    P.EagerInflate = true;
  }
  if (D.Contended > 0) {
    uint64_t Mean = D.Blocked / D.Contended;
    if (Mean <= Config.FastReleaseMeanNanos)
      P.Spin = SpinClass::Deep;
    else if (Mean >= Config.ConvoyMeanNanos)
      P.Spin = SpinClass::ParkEarly;
  }
  return P;
}

bool AdaptivePolicyEngine::advanceDwell(Tracked &T, LockPolicy Desired,
                                        bool Cold) {
  if (Desired != T.Desired) {
    T.Desired = Desired;
    T.DesiredStreak = 1;
  } else if (T.DesiredStreak < UINT32_MAX) {
    ++T.DesiredStreak;
  }
  if (T.Desired == T.Published)
    return false;
  // Cold expiry's ColdTicks wait *is* its dwell; stacking DemoteDwell on
  // top would keep decisions alive long after the object died.
  unsigned Need = Cold ? 1
                  : isDemotion(T.Published, T.Desired) ? Config.DemoteDwellTicks
                                                       : Config.PromoteDwellTicks;
  return T.DesiredStreak >= Need;
}

void AdaptivePolicyEngine::recordDecision(const ThreadContext *Recorder,
                                          uint64_t ObjectAddr,
                                          uint32_t ClassIndex,
                                          LockPolicy Policy,
                                          bool IsClass) const {
  if (!Recorder || !obs::tracingEnabled())
    return;
  obs::EventRing *Ring = Recorder->eventRing();
  if (!Ring)
    return;
  // Extra bit 0: 1 = published, 0 = erased; bit 1: class-level decision.
  uint16_t Extra = (Policy.isDefault() ? 0u : 1u) | (IsClass ? 2u : 0u);
  Ring->record(obs::monotonicNanos(), IsClass ? 0 : ObjectAddr,
               obs::LockEvent::packMeta(obs::EventKind::PolicyDecision,
                                        Recorder->index(), ClassIndex, Extra),
               Policy.pack());
}

void AdaptivePolicyEngine::bumpLeverCounters(LockPolicy Policy) {
  if (Policy.Spin == SpinClass::Deep)
    ++Counters.DeepSpinDecisions;
  else if (Policy.Spin == SpinClass::ParkEarly)
    ++Counters.ParkEarlyDecisions;
  if (Policy.KeepFat)
    ++Counters.KeepFatDecisions;
}

void AdaptivePolicyEngine::stepKey(Tracked &T, const Deltas &D, uint64_t Key,
                                   bool IsClass,
                                   const ThreadContext *Recorder) {
  LockPolicy Desired;
  bool Cold = false;
  if (D.active()) {
    T.IdleTicks = 0;
    Desired = classify(D);
    // A published KeepFat suppresses its own evidence (the deflations
    // that proved thrash stop happening), so the lever is sticky while
    // the object stays contended — it drops at cold expiry, not the
    // first thrash-free tick.  Without this the loop oscillates:
    // decide -> evidence vanishes -> revoke -> thrash -> decide.
    if (T.Desired.KeepFat && D.Contended > 0) {
      Desired.KeepFat = true;
      Desired.EagerInflate |= T.Desired.EagerInflate;
    }
  } else {
    ++T.IdleTicks;
    if (T.IdleTicks >= Config.ColdTicks) {
      Cold = true; // Desired stays default: expire the decision.
    } else {
      // Quiet tick inside the idle grace window: hold the current
      // classification rather than reading silence as a demotion vote.
      Desired = T.Desired;
    }
  }
  if (!advanceDwell(T, Desired, Cold))
    return;

  LockPolicy Previous = T.Published;
  bool Ok;
  if (T.Desired.isDefault()) {
    // erase() returning false just means a failed publish never landed
    // the entry; either way the table now matches the default state.
    if (IsClass)
      Store.eraseClass(static_cast<uint32_t>(Key));
    else
      Store.eraseObject(Key);
    Ok = true;
  } else {
    Ok = IsClass ? Store.publishClass(static_cast<uint32_t>(Key), T.Desired)
                 : Store.publishObject(Key, T.Desired);
  }
  if (!Ok) {
    ++Counters.PublishFailures; // Probe window full; retry next tick.
    return;
  }
  T.Published = T.Desired;
  if (IsClass) {
    if (T.Published.isDefault())
      ++Counters.ClassDemotions;
    else
      ++Counters.ClassPromotions;
  } else if (Cold) {
    ++Counters.Expiries;
  } else if (isDemotion(Previous, T.Published)) {
    ++Counters.Demotions;
  } else {
    ++Counters.Promotions;
  }
  bumpLeverCounters(T.Published);
  recordDecision(Recorder, Key, T.ClassIndex, T.Published, IsClass);
}

void AdaptivePolicyEngine::deflateScan(const ThreadContext *Recorder) {
  if (!Config.SpeculativeDeflation)
    return;
  size_t Scanned = 0;
  for (const auto &KV : Objects) {
    if (Scanned >= Config.DeflateScanLimit)
      break;
    const Tracked &T = KV.second;
    if (KV.first == 0 || T.IdleTicks < Config.ColdTicks)
      continue;
    ++Scanned;
    ++Counters.DeflationScans;
    // The lifetime contract (PolicyConfig::SpeculativeDeflation doc)
    // makes this dereference legal: profiled objects outlive the engine.
    Object *Obj = reinterpret_cast<Object *>(KV.first);
    std::atomic<uint32_t> &Word = Obj->lockWord();
    uint32_t Value = Word.load(std::memory_order_acquire);
    if (!lockword::isFat(Value))
      continue;
    FatLock *Fat = Monitors.resolve(Value);
    if (Fat->isPinned())
      continue; // Emergency monitor: shared by many words; never retire.
    if (!Fat->retireIfQuiescent())
      continue;
    // We won the retire: from here the word is frozen — the owner path
    // can't race (retirement required Owner == 0), and contenders that
    // resolve the stale word bounce off the retired monitor into
    // backoffOnWord, waiting for exactly this store.
    Word.store(lockword::headerBitsOf(Value), std::memory_order_release);
    ParkingLot::global().unparkAll(Obj);
    Monitors.noteRetirement();
    ++Counters.SpeculativeDeflations;
    if (Recorder && obs::tracingEnabled()) {
      if (obs::EventRing *Ring = Recorder->eventRing())
        Ring->record(obs::monotonicNanos(), KV.first,
                     obs::LockEvent::packMeta(obs::EventKind::Deflate,
                                              Recorder->index(), T.ClassIndex,
                                              /*Extra=*/1),
                     0);
    }
  }
}

void AdaptivePolicyEngine::tick(const ThreadContext *Recorder) {
  Collector.drain();
  std::vector<obs::HotLockEntry> Top = Collector.topLocks(Config.TopObjects);
  std::vector<obs::HotClassEntry> TopC =
      Collector.topClasses(Config.TopClasses);

  LockGuard G(Mu);
  ++Counters.Ticks;

  // --- Per-object pass.  The profiler's table is cumulative, so a row's
  // first sighting only seeds its baseline; deltas start on the second
  // sighting.  Tracked objects absent from this tick's table (fell out
  // of the top-N, or simply quiet) take an idle step.
  std::unordered_set<uint64_t> Seen;
  Seen.reserve(Top.size());
  for (const obs::HotLockEntry &E : Top) {
    if (E.ObjectAddr == 0)
      continue; // Defensive: address 0 is DecisionTable's empty sentinel.
    Seen.insert(E.ObjectAddr);
    Tracked &T = Objects[E.ObjectAddr];
    T.ClassIndex = E.ClassIndex;
    Deltas D;
    if (T.Seeded) {
      D.Blocked = deltaOf(E.BlockedNanos, T.BlockedNanos);
      D.Contended = deltaOf(E.ContendedAcquires, T.ContendedAcquires);
      D.Inflations = deltaOf(E.Inflations, T.Inflations);
      D.Deflations = deltaOf(E.Deflations, T.Deflations);
      D.Parks = deltaOf(E.Parks, T.Parks);
    }
    T.Seeded = true;
    T.BlockedNanos = E.BlockedNanos;
    T.ContendedAcquires = E.ContendedAcquires;
    T.Inflations = E.Inflations;
    T.Deflations = E.Deflations;
    T.Parks = E.Parks;
    stepKey(T, D, E.ObjectAddr, /*IsClass=*/false, Recorder);
  }
  for (auto It = Objects.begin(); It != Objects.end();) {
    Tracked &T = It->second;
    if (!Seen.count(It->first))
      stepKey(T, Deltas(), It->first, /*IsClass=*/false, Recorder);
    // Long-cold and nothing published: forget the object entirely.  (A
    // published decision is never stranded — stepKey expires it at
    // ColdTicks, well before 2x.)
    if (T.IdleTicks >= 2 * Config.ColdTicks && T.Published.isDefault())
      It = Objects.erase(It);
    else
      ++It;
  }

  // --- Per-class pass: same machinery over class rollups, gated so a
  // class needs a population (MinClassObjects) before its long tail
  // inherits a decision.
  std::unordered_set<uint32_t> SeenClasses;
  SeenClasses.reserve(TopC.size());
  for (const obs::HotClassEntry &E : TopC) {
    if (E.Objects < Config.MinClassObjects)
      continue;
    SeenClasses.insert(E.ClassIndex);
    Tracked &T = Classes[E.ClassIndex];
    T.ClassIndex = E.ClassIndex;
    Deltas D;
    if (T.Seeded) {
      D.Blocked = deltaOf(E.BlockedNanos, T.BlockedNanos);
      D.Contended = deltaOf(E.ContendedAcquires, T.ContendedAcquires);
      D.Inflations = deltaOf(E.Inflations, T.Inflations);
      D.Deflations = deltaOf(E.Deflations, T.Deflations);
      D.Parks = deltaOf(E.Parks, T.Parks);
    }
    T.Seeded = true;
    T.BlockedNanos = E.BlockedNanos;
    T.ContendedAcquires = E.ContendedAcquires;
    T.Inflations = E.Inflations;
    T.Deflations = E.Deflations;
    T.Parks = E.Parks;
    stepKey(T, D, E.ClassIndex, /*IsClass=*/true, Recorder);
  }
  for (auto It = Classes.begin(); It != Classes.end();) {
    Tracked &T = It->second;
    if (!SeenClasses.count(It->first))
      stepKey(T, Deltas(), It->first, /*IsClass=*/true, Recorder);
    if (T.IdleTicks >= 2 * Config.ColdTicks && T.Published.isDefault())
      It = Classes.erase(It);
    else
      ++It;
  }

  deflateScan(Recorder);
  Counters.ObjectsTracked = Objects.size();
}

PolicyCounters AdaptivePolicyEngine::counters() const {
  LockGuard G(Mu);
  return Counters;
}

//===- vm/Verifier.h - Static bytecode verification -------------*- C++ -*-===//
///
/// \file
/// A static verifier for microjvm bytecode, in the spirit of the JVM
/// specification's verifier.  It runs a standard abstract-interpretation
/// dataflow over each method and rejects:
///
///  - operand stack underflow and inconsistent stack depths at merges,
///  - statically visible type confusion (int vs reference),
///  - out-of-range locals, branch targets, class and method ids,
///  - falling off the end of the code,
///  - and — most relevant to this library — *unbalanced structured
///    locking*: every path from a monitorenter must pass a matching
///    monitorexit before returning, and merge points must agree on the
///    monitor nesting depth.  This is the static counterpart of the
///    IllegalMonitorStateException the interpreter raises dynamically,
///    and it is what lets a JVM trust the compiler's synchronized()
///    blocks to preserve the thin-lock owner discipline.
///
/// The verifier is deliberately *best-effort about values it cannot see*
/// (untyped method arguments, field slots): those uses verify as Unknown
/// and stay dynamically checked by the interpreter, exactly as the
/// microjvm's trap machinery already does.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_VERIFIER_H
#define THINLOCKS_VM_VERIFIER_H

#include "vm/Method.h"

#include <cstdint>
#include <optional>
#include <string>

namespace thinlocks {
namespace vm {

class VM;

/// A verification failure: where and why.
struct VerifyError {
  uint32_t Pc = 0;
  std::string Message;
};

/// Verifies bytecode methods against a VM's class/method tables.
class Verifier {
  const VM &Vm;
  /// Upper bound on tracked operand-stack depth (sanity limit).
  uint32_t MaxStackDepth;

public:
  explicit Verifier(const VM &Vm, uint32_t MaxStackDepth = 256);

  /// Verifies \p M.  \returns std::nullopt on success, or the first
  /// error found.  Native methods trivially verify.
  std::optional<VerifyError> verify(const Method &M) const;

  /// Verifies every bytecode method defined in \p Vm so far.
  /// \returns the first failure, tagging the message with the method
  /// name, or std::nullopt.
  std::optional<VerifyError> verifyAll() const;
};

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_VERIFIER_H

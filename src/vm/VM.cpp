//===- vm/VM.cpp - The microjvm runtime -----------------------------------===//

#include "vm/VM.h"

#include "core/OwnershipAudit.h"
#include "vm/Interpreter.h"

#include <cassert>

using namespace thinlocks;
using namespace thinlocks::vm;

const char *vm::protocolKindName(ProtocolKind Kind) {
  switch (Kind) {
  case ProtocolKind::ThinLock:
    return "ThinLock";
  case ProtocolKind::MonitorCache:
    return "JDK111";
  case ProtocolKind::HotLocks:
    return "IBM112";
  case ProtocolKind::EagerMonitor:
    return "EagerMonitor";
  }
  return "<bad protocol>";
}

VM::VM() : VM(Config()) {}

VM::VM(Config Cfg) : Cfg(Cfg), Monitors(Cfg.MonitorCapacity) {
  switch (Cfg.Protocol) {
  case ProtocolKind::ThinLock:
    Thin = std::make_unique<ThinLockManager>(
        Monitors, Cfg.CollectLockStats ? &Stats : nullptr,
        Cfg.ThinLockDeflation ? DeflationPolicy::WhenQuiescent
                              : DeflationPolicy::Never,
        Cfg.Contention);
    Backend = makeSyncBackend(*Thin);
    // Thread-index recycling safety: detach() quarantines any index a
    // live lock word still encodes (a thread that died holding a lock),
    // so the next spawn cannot impersonate the stale owner.
    Registry.setIndexAuditor(makeLockWordAuditor(TheHeap, Monitors));
    break;
  case ProtocolKind::MonitorCache:
    Jdk111 = std::make_unique<MonitorCache>(Cfg.MonitorCachePoolSize);
    Backend = makeSyncBackend(*Jdk111);
    break;
  case ProtocolKind::HotLocks:
    Ibm112 = std::make_unique<HotLocks>(
        Cfg.NumHotLocks, Cfg.HotPromotionThreshold,
        Cfg.MonitorCachePoolSize);
    Backend = makeSyncBackend(*Ibm112);
    break;
  case ProtocolKind::EagerMonitor:
    Eager = std::make_unique<EagerMonitor>();
    Backend = makeSyncBackend(*Eager);
    break;
  }

  // Class objects are instances of the primordial "java/lang/Class".
  defineClass("java/lang/Class", {});
}

VM::~VM() = default;

Klass &VM::defineClass(std::string Name, std::vector<FieldInfo> Fields) {
  std::lock_guard<std::mutex> Guard(DefMutex);
  auto K = std::make_unique<Klass>();
  K->Name = std::move(Name);
  K->Fields = std::move(Fields);
  for (uint32_t Slot = 0; Slot < K->Fields.size(); ++Slot)
    K->Fields[Slot].Slot = Slot;
  K->HeapClass = &TheHeap.classes().registerClass(
      K->Name, static_cast<uint32_t>(K->Fields.size()));

  assert(K->HeapClass->Index == KlassByHeapIndex.size() &&
         "all heap classes must come from defineClass");
  KlassByHeapIndex.push_back(K.get());

  // The very first class defined is java/lang/Class itself; its class
  // object is an instance of itself.
  const ClassInfo &ClassKlassInfo =
      KlassByHeapIndex[0]->HeapClass ? *KlassByHeapIndex[0]->HeapClass
                                     : *K->HeapClass;
  K->ClassObj = TheHeap.allocate(ClassKlassInfo);

  Klasses.push_back(std::move(K));
  return *Klasses.back();
}

Method &VM::defineMethod(Klass &Owner, std::string Name, MethodTraits Traits,
                         uint16_t NumArgs, uint16_t NumLocals,
                         std::vector<Instruction> Code) {
  assert(NumLocals >= NumArgs && "locals must cover the arguments");
  assert(!Traits.IsNative && "use defineNativeMethod for natives");
  std::lock_guard<std::mutex> Guard(DefMutex);
  MethodRecord Record;
  Record.M = std::make_unique<Method>();
  Method &M = *Record.M;
  M.Id = static_cast<uint32_t>(Methods.size());
  M.Name = std::move(Name);
  M.Owner = &Owner;
  M.Traits = Traits;
  M.NumArgs = NumArgs;
  M.NumLocals = NumLocals;
  M.Code = std::move(Code);
  Owner.MethodIds.push_back(M.Id);
  Methods.push_back(std::move(Record));
  return M;
}

Method &VM::defineNativeMethod(Klass &Owner, std::string Name,
                               MethodTraits Traits, uint16_t NumArgs,
                               bool ReturnsValue, NativeFn Fn) {
  std::lock_guard<std::mutex> Guard(DefMutex);
  MethodRecord Record;
  Record.ReturnsValue = ReturnsValue;
  Record.M = std::make_unique<Method>();
  Method &M = *Record.M;
  M.Id = static_cast<uint32_t>(Methods.size());
  M.Name = std::move(Name);
  M.Owner = &Owner;
  M.Traits = Traits;
  M.Traits.IsNative = true;
  M.NumArgs = NumArgs;
  M.NumLocals = NumArgs;
  M.Native = std::move(Fn);
  Owner.MethodIds.push_back(M.Id);
  Methods.push_back(std::move(Record));
  return M;
}

const Method *VM::methodById(uint32_t Id) const {
  if (Id >= Methods.size())
    return nullptr;
  return Methods[Id].M.get();
}

bool VM::nativeReturnsValue(uint32_t Id) const {
  assert(Id < Methods.size() && "bad method id");
  return Methods[Id].ReturnsValue;
}

const Method *VM::findMethod(const Klass &Owner,
                             const std::string &Name) const {
  for (uint32_t Id : Owner.methodIds()) {
    const Method *M = Methods[Id].M.get();
    if (M->Name == Name)
      return M;
  }
  return nullptr;
}

Klass *VM::findClass(const std::string &Name) {
  for (auto &K : Klasses)
    if (K->Name == Name)
      return K.get();
  return nullptr;
}

Klass *VM::klassForObject(const Object *Obj) const {
  assert(Obj->classIndex() < KlassByHeapIndex.size() &&
         "object from a foreign heap");
  return KlassByHeapIndex[Obj->classIndex()];
}

Klass *VM::klassAtHeapIndex(uint32_t HeapIndex) const {
  if (HeapIndex >= KlassByHeapIndex.size())
    return nullptr;
  return KlassByHeapIndex[HeapIndex];
}

Object *VM::newInstance(const Klass &K) {
  return TheHeap.allocate(K.heapClass());
}

RunResult VM::call(const Method &M, std::span<const Value> Args,
                   const ThreadContext &Thread) {
  Interpreter Interp(*this, Thread);
  return Interp.run(M, Args);
}

RunResult VM::VMThread::join() {
  assert(Worker.joinable() && "joining a thread twice or a moved handle");
  Worker.join();
  return *Slot;
}

VM::VMThread VM::spawn(const Method &M, std::vector<Value> Args,
                       std::string ThreadName) {
  VMThread Handle;
  Handle.Slot = std::make_unique<RunResult>();
  RunResult *Slot = Handle.Slot.get();
  Handle.Worker = std::thread([this, &M, Args = std::move(Args),
                               Name = std::move(ThreadName), Slot]() {
    ScopedThreadAttachment Attachment(Registry, Name);
    if (!Attachment.context().isValid()) {
      // Registry index space exhausted: surface a typed trap instead of
      // running bytecode with a context every lock op would reject.
      Slot->TrapKind = Trap::ThreadExhausted;
      return;
    }
    *Slot = call(M, Args, Attachment.context());
  });
  return Handle;
}

//===- vm/Klass.cpp - microjvm class metadata -----------------------------===//

#include "vm/Klass.h"

#include "vm/Method.h"

#include <cassert>

using namespace thinlocks;
using namespace thinlocks::vm;

int32_t Klass::fieldSlot(const std::string &FieldName) const {
  for (const FieldInfo &Field : Fields)
    if (Field.Name == FieldName)
      return static_cast<int32_t>(Field.Slot);
  return -1;
}

ValueKind Klass::fieldKind(uint32_t Slot) const {
  assert(Slot < Fields.size() && "field slot out of range");
  return Fields[Slot].Kind;
}

const char *vm::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::Iconst:
    return "iconst";
  case Opcode::AconstNull:
    return "aconst_null";
  case Opcode::Iload:
    return "iload";
  case Opcode::Istore:
    return "istore";
  case Opcode::Aload:
    return "aload";
  case Opcode::Astore:
    return "astore";
  case Opcode::Iinc:
    return "iinc";
  case Opcode::Iadd:
    return "iadd";
  case Opcode::Isub:
    return "isub";
  case Opcode::Imul:
    return "imul";
  case Opcode::Idiv:
    return "idiv";
  case Opcode::Irem:
    return "irem";
  case Opcode::Ineg:
    return "ineg";
  case Opcode::Dup:
    return "dup";
  case Opcode::Pop:
    return "pop";
  case Opcode::Swap:
    return "swap";
  case Opcode::Goto:
    return "goto";
  case Opcode::IfIcmpLt:
    return "if_icmplt";
  case Opcode::IfIcmpGe:
    return "if_icmpge";
  case Opcode::IfIcmpEq:
    return "if_icmpeq";
  case Opcode::IfIcmpNe:
    return "if_icmpne";
  case Opcode::Ifeq:
    return "ifeq";
  case Opcode::Ifne:
    return "ifne";
  case Opcode::IfNull:
    return "ifnull";
  case Opcode::IfNonNull:
    return "ifnonnull";
  case Opcode::New:
    return "new";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::MonitorEnter:
    return "monitorenter";
  case Opcode::MonitorExit:
    return "monitorexit";
  case Opcode::Invoke:
    return "invoke";
  case Opcode::Return:
    return "return";
  case Opcode::Ireturn:
    return "ireturn";
  case Opcode::Areturn:
    return "areturn";
  case Opcode::Yield:
    return "yield";
  }
  return "<bad opcode>";
}

const char *vm::trapName(Trap T) {
  switch (T) {
  case Trap::None:
    return "none";
  case Trap::NullPointer:
    return "NullPointerException";
  case Trap::DivideByZero:
    return "ArithmeticException";
  case Trap::IllegalMonitorState:
    return "IllegalMonitorStateException";
  case Trap::StackOverflow:
    return "StackOverflowError";
  case Trap::UnknownMethod:
    return "NoSuchMethodError";
  case Trap::BadBytecode:
    return "VerifyError";
  case Trap::IndexOutOfBounds:
    return "IndexOutOfBoundsException";
  case Trap::ThreadExhausted:
    return "OutOfMemoryError: unable to create native thread";
  }
  return "<bad trap>";
}

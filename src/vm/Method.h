//===- vm/Method.h - microjvm methods and traps ----------------*- C++ -*-===//
///
/// \file
/// Method metadata for the microjvm.  Methods are either bytecode
/// (a Code vector run by the Interpreter) or native (a C++ callable).
/// `synchronized` methods lock their receiver — or their class object
/// when static — on entry and unlock on every exit, exactly the behaviour
/// whose cost the paper's CallSync/NestedCallSync micro-benchmarks
/// measure.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_METHOD_H
#define THINLOCKS_VM_METHOD_H

#include "vm/Bytecode.h"
#include "vm/Value.h"

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace thinlocks {

class ThreadContext;

namespace vm {

class Klass;
class VM;

/// Abnormal interpreter termination reasons (the microjvm has no
/// exception handling; a trap unwinds the whole activation).
enum class Trap : uint8_t {
  None,
  NullPointer,
  DivideByZero,
  IllegalMonitorState,
  StackOverflow,
  UnknownMethod,
  BadBytecode,
  IndexOutOfBounds,
  /// spawn() could not attach: the registry's 15-bit index space is
  /// exhausted (java.lang.OutOfMemoryError: unable to create thread).
  ThreadExhausted,
};

/// \returns a printable name for \p T.
const char *trapName(Trap T);

/// Signature of a native method body.  \p Args holds the receiver (for
/// instance methods) followed by declared arguments; \p Result receives
/// the return value when the trap is Trap::None.
using NativeFn = std::function<Trap(VM &Vm, const ThreadContext &Thread,
                                    std::span<Value> Args, Value &Result)>;

/// Method access and dispatch flags.
struct MethodTraits {
  bool IsSynchronized = false;
  bool IsStatic = false;
  bool IsNative = false;
};

/// One microjvm method.
struct Method {
  uint32_t Id = 0;
  std::string Name;
  Klass *Owner = nullptr;
  MethodTraits Traits;
  /// Argument count, *including* the receiver for instance methods.
  uint16_t NumArgs = 0;
  /// Local variable slots (>= NumArgs; args occupy the first slots).
  uint16_t NumLocals = 0;
  std::vector<Instruction> Code;
  NativeFn Native;
};

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_METHOD_H

//===- vm/Assembler.h - Fluent bytecode builder ----------------*- C++ -*-===//
///
/// \file
/// A small assembler for microjvm methods: fluent emission with forward
/// label references and a structured helper for synchronized() blocks.
/// The micro-benchmarks of paper Table 2 are written with this builder
/// (see workload/MicroBench.cpp), so the bytecode shape — loop around a
/// monitorenter/monitorexit pair around an integer increment — matches
/// what javac produced for the paper's Java sources.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_ASSEMBLER_H
#define THINLOCKS_VM_ASSEMBLER_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace thinlocks {
namespace vm {

/// Builds an instruction vector with label resolution.
class Assembler {
public:
  /// Opaque label handle.
  class Label {
    friend class Assembler;
    int32_t Id = -1;

  public:
    Label() = default;
  };

  Assembler() = default;

  /// Creates an unbound label usable as a jump target before binding.
  Label newLabel();

  /// Binds \p L to the next emitted instruction's index.
  Assembler &bind(Label L);

  // --- Straight-line instructions ---------------------------------------
  Assembler &nop();
  Assembler &iconst(int32_t Value);
  Assembler &aconstNull();
  Assembler &iload(int32_t Local);
  Assembler &istore(int32_t Local);
  Assembler &aload(int32_t Local);
  Assembler &astore(int32_t Local);
  Assembler &iinc(int32_t Local, int32_t Delta);
  Assembler &iadd();
  Assembler &isub();
  Assembler &imul();
  Assembler &idiv();
  Assembler &irem();
  Assembler &ineg();
  Assembler &dup();
  Assembler &pop();
  Assembler &swap();
  Assembler &newObject(int32_t ClassIndex);
  Assembler &getField(int32_t Slot);
  Assembler &putField(int32_t Slot);
  Assembler &monitorEnter();
  Assembler &monitorExit();
  Assembler &invoke(uint32_t MethodId);
  Assembler &ret();
  Assembler &iret();
  Assembler &aret();
  Assembler &yield();

  // --- Branches ----------------------------------------------------------
  Assembler &jmp(Label Target);
  Assembler &ifIcmpLt(Label Target);
  Assembler &ifIcmpGe(Label Target);
  Assembler &ifIcmpEq(Label Target);
  Assembler &ifIcmpNe(Label Target);
  Assembler &ifeq(Label Target);
  Assembler &ifne(Label Target);
  Assembler &ifNull(Label Target);
  Assembler &ifNonNull(Label Target);

  // --- Structured helpers --------------------------------------------------

  /// Emits a `synchronized (locals[RefLocal]) { Body }` region: aload +
  /// monitorenter, the body, aload + monitorexit.  (The microjvm has no
  /// exceptions other than fatal traps, so no handler table is needed.)
  Assembler &synchronizedOn(int32_t RefLocal,
                            const std::function<void(Assembler &)> &Body);

  /// Emits `for (locals[CounterLocal] = 0; counter < locals[LimitLocal];
  /// ++counter) { Body }`.
  Assembler &countedLoop(int32_t CounterLocal, int32_t LimitLocal,
                         const std::function<void(Assembler &)> &Body);

  /// Resolves all label references and \returns the finished code.
  /// Asserts that every referenced label was bound.
  std::vector<Instruction> finish();

  /// \returns the index the next instruction will occupy.
  size_t nextIndex() const { return Code.size(); }

private:
  Assembler &emit(Opcode Op, int32_t A = 0, int32_t B = 0);
  Assembler &emitBranch(Opcode Op, Label Target);

  struct LabelState {
    int32_t Target = -1;
    std::vector<size_t> Fixups;
  };

  std::vector<Instruction> Code;
  std::vector<LabelState> Labels;
  bool Finished = false;
};

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_ASSEMBLER_H

//===- vm/VM.h - The microjvm runtime --------------------------*- C++ -*-===//
///
/// \file
/// The microjvm: heap + thread registry + a pluggable synchronization
/// protocol + class/method tables + an interpreter entry point.  It is
/// the substrate standing in for the paper's JDK 1.1.2: all Table 2
/// micro-benchmarks and the macro-workload replays execute as interpreted
/// bytecode on top of one of three protocols — ThinLock (the paper's
/// contribution), MonitorCache ("JDK111") or HotLocks ("IBM112").
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_VM_H
#define THINLOCKS_VM_VM_H

#include "baselines/EagerMonitor.h"
#include "baselines/HotLocks.h"
#include "baselines/MonitorCache.h"
#include "core/LockStats.h"
#include "core/SyncBackend.h"
#include "core/ThinLock.h"
#include "fatlock/MonitorTable.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"
#include "vm/Klass.h"
#include "vm/Method.h"

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace thinlocks {
namespace vm {

/// Which synchronization protocol a VM instance runs on.
enum class ProtocolKind { ThinLock, MonitorCache, HotLocks, EagerMonitor };

/// \returns the display name used in benchmark output.
const char *protocolKindName(ProtocolKind Kind);

/// Result of executing a method: a trap (or None) plus the return value.
struct RunResult {
  Trap TrapKind = Trap::None;
  Value Result;

  bool ok() const { return TrapKind == Trap::None; }
};

/// The runtime.  Definition (defineClass / defineMethod /
/// defineNativeMethod) must complete before any VM thread is spawned:
/// lookup paths (methodById, klassForObject, ...) are deliberately
/// lock-free and rely on the tables being frozen during execution.
/// Definition itself is internally locked, and thread creation provides
/// the happens-before edge that publishes the tables to spawned threads.
class VM {
public:
  struct Config {
    ProtocolKind Protocol = ProtocolKind::ThinLock;
    /// JDK111 model: monitor pool size ("size of the monitor cache").
    size_t MonitorCachePoolSize = 128;
    /// IBM112 model: number of hot locks (the paper's system used 32).
    size_t NumHotLocks = 32;
    uint64_t HotPromotionThreshold = 4;
    /// Thin-lock model: deflate fat locks at quiescence (extension; the
    /// paper's discipline keeps inflation permanent).
    bool ThinLockDeflation = false;
    /// Record LockStats (thin-lock protocol only).
    bool CollectLockStats = false;
    /// Fat-lock table size (thin-lock protocol).  Lowering it makes the
    /// exhaustion degradation path testable without 8M inflations; the
    /// table's shared emergency monitor absorbs overflow either way.
    uint32_t MonitorCapacity = MonitorTable::MaxMonitorIndex;
    /// Thin-lock contention tuning (escalation ladder + deadlock
    /// watchdog).
    ContentionOptions Contention;
  };

  /// Constructs a VM with default configuration (thin locks).
  VM();
  explicit VM(Config Cfg);
  ~VM();

  VM(const VM &) = delete;
  VM &operator=(const VM &) = delete;

  Heap &heap() { return TheHeap; }
  ThreadRegistry &threads() { return Registry; }
  SyncBackend &sync() { return SyncOverride ? *SyncOverride : *Backend; }
  ProtocolKind protocol() const { return Cfg.Protocol; }

  /// Routes all interpreter synchronization through \p External (e.g. a
  /// workload::TracingBackend wrapping sync()) instead of the built-in
  /// backend; pass nullptr to restore.  Not owning; the override must
  /// outlive execution.  Install before spawning VM threads.
  void overrideSync(SyncBackend *External) { SyncOverride = External; }

  /// \returns thin-lock statistics, or nullptr if not collecting / not
  /// running the thin-lock protocol.
  LockStats *lockStats() { return Cfg.CollectLockStats ? &Stats : nullptr; }

  // --- Definition ---------------------------------------------------------

  /// Defines a class with the given fields (slots assigned in order).
  Klass &defineClass(std::string Name, std::vector<FieldInfo> Fields);

  /// Defines a bytecode method.  \p NumArgs includes the receiver for
  /// instance methods.
  Method &defineMethod(Klass &Owner, std::string Name, MethodTraits Traits,
                       uint16_t NumArgs, uint16_t NumLocals,
                       std::vector<Instruction> Code);

  /// Defines a native method.  \p ReturnsValue controls whether the
  /// interpreter pushes the native's result.
  Method &defineNativeMethod(Klass &Owner, std::string Name,
                             MethodTraits Traits, uint16_t NumArgs,
                             bool ReturnsValue, NativeFn Fn);

  /// \returns the method with id \p Id, or nullptr.
  const Method *methodById(uint32_t Id) const;

  /// \returns the method \p Name of \p Owner, or nullptr.
  const Method *findMethod(const Klass &Owner,
                           const std::string &Name) const;

  /// \returns true if native method \p Id produces a value the
  /// interpreter should push.  Bytecode methods signal this through
  /// their return opcode instead.
  bool nativeReturnsValue(uint32_t Id) const;

  /// \returns the class named \p Name, or nullptr.
  Klass *findClass(const std::string &Name);

  /// \returns the Klass for a heap object (objects are only created via
  /// newInstance, so this always succeeds).
  Klass *klassForObject(const Object *Obj) const;

  /// \returns the Klass whose heap class index is \p HeapIndex, or
  /// nullptr if out of range.
  Klass *klassAtHeapIndex(uint32_t HeapIndex) const;

  // --- Execution ------------------------------------------------------------

  /// Allocates an instance of \p K.
  Object *newInstance(const Klass &K);

  /// Runs \p M with \p Args on the calling thread, which must be
  /// attached as \p Thread.
  RunResult call(const Method &M, std::span<const Value> Args,
                 const ThreadContext &Thread);

  /// Runs \p M on a fresh OS thread (attached to this VM's registry).
  /// Join the returned handle to collect the result.
  class VMThread {
    friend class VM;
    std::thread Worker;
    std::unique_ptr<RunResult> Slot;

  public:
    VMThread() = default;
    VMThread(VMThread &&) = default;
    VMThread &operator=(VMThread &&) = default;

    /// Blocks until the thread finishes; \returns its result.
    RunResult join();
  };

  VMThread spawn(const Method &M, std::vector<Value> Args,
                 std::string ThreadName = std::string());

private:
  // `ReturnsValue` lives beside Method in a parallel flag array because
  // only natives need it (bytecode methods decide via their return op).
  struct MethodRecord {
    std::unique_ptr<Method> M;
    bool ReturnsValue = false;
  };
  friend class Interpreter;

  Config Cfg;
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;

  // Exactly one protocol is constructed, per Cfg.Protocol.
  std::unique_ptr<ThinLockManager> Thin;
  std::unique_ptr<MonitorCache> Jdk111;
  std::unique_ptr<HotLocks> Ibm112;
  std::unique_ptr<EagerMonitor> Eager;
  std::unique_ptr<SyncBackend> Backend;
  SyncBackend *SyncOverride = nullptr;

  mutable std::mutex DefMutex;
  std::vector<std::unique_ptr<Klass>> Klasses;
  std::vector<MethodRecord> Methods;
  /// Heap class index -> Klass* (dense; all classes go through
  /// defineClass).
  std::vector<Klass *> KlassByHeapIndex;
};

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_VM_H

//===- vm/Interpreter.h - microjvm bytecode interpreter --------*- C++ -*-===//
///
/// \file
/// A switch-dispatch bytecode interpreter with an explicit frame stack.
/// monitorenter/monitorexit and synchronized-method entry/exit route
/// through the VM's pluggable SyncBackend, so the exact same bytecode
/// measures the ThinLock, JDK111, and IBM112 protocols — matching the
/// paper's methodology of swapping the locking implementation underneath
/// an otherwise identical interpreted JDK.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_INTERPRETER_H
#define THINLOCKS_VM_INTERPRETER_H

#include "threads/ThreadContext.h"
#include "vm/Method.h"
#include "vm/VM.h"
#include "vm/Value.h"

#include <cstdint>
#include <span>
#include <vector>

namespace thinlocks {
namespace vm {

/// One interpreter activation.  Cheap to construct; VM::call makes one
/// per top-level invocation.
class Interpreter {
public:
  /// \param MaxFrames call-depth limit (StackOverflow trap beyond it).
  Interpreter(VM &Vm, const ThreadContext &Thread, size_t MaxFrames = 2048);

  Interpreter(const Interpreter &) = delete;
  Interpreter &operator=(const Interpreter &) = delete;

  /// Executes \p M with \p Args to completion (return or trap).
  RunResult run(const Method &M, std::span<const Value> Args);

  /// \returns total bytecodes executed by this activation (for tests and
  /// the interpretation-overhead measurements behind Figure 6's NOP row).
  uint64_t instructionsExecuted() const { return InstructionCount; }

private:
  struct Frame {
    const Method *M = nullptr;
    uint32_t Pc = 0;
    size_t LocalsBase = 0;
    size_t StackBase = 0;
    /// Object locked on entry for synchronized methods (null otherwise).
    Object *SyncObject = nullptr;
  };

  // Frame management.  pushFrame locks the sync object of synchronized
  // methods; popFrame unlocks it.
  Trap pushFrame(const Method &M, std::span<const Value> Args);
  void popFrameLocals(const Frame &F);

  // Trap unwinding: releases synchronized-method monitors of all frames.
  RunResult unwindWith(Trap T);

  // Operand stack helpers (runtime-checked: the microjvm has no verifier).
  bool push(Value V);
  bool pop(Value &V);
  bool popInt(int32_t &V);
  bool popRef(Object *&V);

  VM &Vm;
  const ThreadContext &Thread;
  size_t MaxFrames;
  std::vector<Frame> Frames;
  std::vector<Value> Locals;
  std::vector<Value> Stack;
  uint64_t InstructionCount = 0;
};

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_INTERPRETER_H

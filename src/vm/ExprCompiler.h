//===- vm/ExprCompiler.h - Arithmetic expression compiler ------*- C++ -*-===//
///
/// \file
/// A small front end for the microjvm: compiles integer arithmetic
/// expressions over named parameters into bytecode methods.
///
///   expr    := term  (('+' | '-') term)*
///   term    := unary (('*' | '/' | '%') unary)*
///   unary   := '-' unary | primary
///   primary := NUMBER | IDENT | '(' expr ')'
///
/// Compilation is single-pass recursive descent straight onto the
/// operand stack (the grammar *is* the stack discipline), with literal
/// constant folding: any subexpression whose operands are literals is
/// evaluated at compile time with Java int semantics (wrap-around;
/// folding is skipped for division by a literal zero so the runtime
/// ArithmeticException is preserved).
///
/// Emitted methods pass the static Verifier and run on the Interpreter;
/// the exprcompiler tests fuzz randomly generated expressions against a
/// host-side evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_EXPRCOMPILER_H
#define THINLOCKS_VM_EXPRCOMPILER_H

#include "vm/Method.h"

#include <string>
#include <string_view>
#include <vector>

namespace thinlocks {
namespace vm {

class Klass;
class VM;

/// Compiles expressions into methods of one owner class.
class ExprCompiler {
public:
  /// Outcome of one compilation.
  struct Result {
    /// The compiled method (takes the parameters as int arguments, in
    /// declaration order), or nullptr on error.
    const Method *M = nullptr;
    /// Human-readable error when M is null.
    std::string Error;
    /// Byte offset into the source where the error was detected.
    size_t ErrorPos = 0;

    bool ok() const { return M != nullptr; }
  };

  ExprCompiler(VM &Vm, Klass &Owner) : Vm(Vm), Owner(Owner) {}

  /// Compiles \p Source over int parameters named \p Params.
  /// \p MethodName names the defined method (unique names not required).
  Result compile(std::string_view Source,
                 const std::vector<std::string> &Params,
                 std::string MethodName = "expr");

private:
  VM &Vm;
  Klass &Owner;
};

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_EXPRCOMPILER_H

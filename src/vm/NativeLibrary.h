//===- vm/NativeLibrary.h - Thread-safe library classes --------*- C++ -*-===//
///
/// \file
/// The thread-safe standard-library classes whose synchronized methods
/// are the paper's motivation: "the most commonly used public methods of
/// standard utility classes like Vector and Hashtable are synchronized.
/// When these classes are used by single-threaded programs ... there is
/// substantial performance degradation" (§1).  The paper's §3.4 analysis
/// leans on them directly: javalex's time is dominated by the
/// synchronized Vector.elementAt, and jax's by BitSet.get, which is *not*
/// synchronized but executes a synchronized block internally.  Both
/// patterns are reproduced here.
///
/// Classes installed:
///   java/util/Vector       addElement/elementAt/size/removeAllElements,
///                          all synchronized
///   java/util/Hashtable    put/get/size/containsKey, all synchronized
///   java/util/BitSet       set/clear synchronized; get unsynchronized
///                          but entering a synchronized block inside
///   java/lang/StringBuffer append/length, synchronized
///   java/lang/Thread       yield (static)
///
/// Element storage is native-side, keyed by object identity; the object's
/// own monitor (held by the synchronized method machinery) protects the
/// per-object contents, so the locking protocol under test is what makes
/// these classes thread-safe — exactly as in the JDK.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_NATIVELIBRARY_H
#define THINLOCKS_VM_NATIVELIBRARY_H

#include "vm/VM.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace thinlocks {
namespace vm {

/// Installs and backs the thread-safe library classes for one VM.  Must
/// outlive every use of the classes it defines.
class NativeLibrary {
public:
  explicit NativeLibrary(VM &Vm);

  NativeLibrary(const NativeLibrary &) = delete;
  NativeLibrary &operator=(const NativeLibrary &) = delete;

  Klass &vectorClass() { return *VectorKlass; }
  Klass &hashtableClass() { return *HashtableKlass; }
  Klass &bitSetClass() { return *BitSetKlass; }
  Klass &stringBufferClass() { return *StringBufferKlass; }
  Klass &threadClass() { return *ThreadKlass; }

  // Named method accessors used by workloads (never nullptr).
  const Method &vectorAddElement() const { return *VecAdd; }
  const Method &vectorElementAt() const { return *VecAt; }
  const Method &vectorSize() const { return *VecSize; }
  const Method &vectorRemoveAll() const { return *VecClear; }
  const Method &hashtablePut() const { return *HashPut; }
  const Method &hashtableGet() const { return *HashGet; }
  const Method &hashtableSize() const { return *HashSize; }
  const Method &hashtableContainsKey() const { return *HashHas; }
  const Method &bitSetSet() const { return *BitsSet; }
  const Method &bitSetClear() const { return *BitsClear; }
  const Method &bitSetGet() const { return *BitsGet; }
  const Method &stringBufferAppend() const { return *SbAppend; }
  const Method &stringBufferLength() const { return *SbLength; }
  const Method &threadYield() const { return *Yield; }

private:
  struct VectorData {
    std::vector<Value> Elements;
  };
  struct HashtableData {
    std::unordered_map<int32_t, Value> Entries;
  };
  struct BitSetData {
    std::vector<uint64_t> Words;
  };
  struct StringBufferData {
    std::vector<int32_t> Chars;
  };

  // Fetches (creating on demand) the native backing store for \p Obj.
  // The map mutex guards only the map structure; per-object contents are
  // protected by the object's monitor, which every caller holds.
  VectorData &vectorData(const Object *Obj);
  HashtableData &hashtableData(const Object *Obj);
  BitSetData &bitSetData(const Object *Obj);
  StringBufferData &stringBufferData(const Object *Obj);

  void installVector(VM &Vm);
  void installHashtable(VM &Vm);
  void installBitSet(VM &Vm);
  void installStringBuffer(VM &Vm);
  void installThread(VM &Vm);

  std::mutex MapMutex;
  std::unordered_map<const Object *, std::unique_ptr<VectorData>> Vectors;
  std::unordered_map<const Object *, std::unique_ptr<HashtableData>>
      Hashtables;
  std::unordered_map<const Object *, std::unique_ptr<BitSetData>> BitSets;
  std::unordered_map<const Object *, std::unique_ptr<StringBufferData>>
      StringBuffers;

  Klass *VectorKlass = nullptr;
  Klass *HashtableKlass = nullptr;
  Klass *BitSetKlass = nullptr;
  Klass *StringBufferKlass = nullptr;
  Klass *ThreadKlass = nullptr;

  const Method *VecAdd = nullptr;
  const Method *VecAt = nullptr;
  const Method *VecSize = nullptr;
  const Method *VecClear = nullptr;
  const Method *HashPut = nullptr;
  const Method *HashGet = nullptr;
  const Method *HashSize = nullptr;
  const Method *HashHas = nullptr;
  const Method *BitsSet = nullptr;
  const Method *BitsClear = nullptr;
  const Method *BitsGet = nullptr;
  const Method *SbAppend = nullptr;
  const Method *SbLength = nullptr;
  const Method *Yield = nullptr;
};

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_NATIVELIBRARY_H

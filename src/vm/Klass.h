//===- vm/Klass.h - microjvm class metadata --------------------*- C++ -*-===//
///
/// \file
/// VM-level class metadata layered over the heap's ClassInfo: named,
/// typed fields and a method list.  Every Klass owns a *class object* on
/// the heap, which is what static synchronized methods lock (mirroring
/// Java's Class-object locking).
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_KLASS_H
#define THINLOCKS_VM_KLASS_H

#include "heap/ClassInfo.h"
#include "heap/Object.h"
#include "vm/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace thinlocks {
namespace vm {

/// A declared instance field.
struct FieldInfo {
  std::string Name;
  ValueKind Kind = ValueKind::Int;
  uint32_t Slot = 0;
};

/// VM class: fields, methods, and the backing heap class.
class Klass {
  friend class VM;

  std::string Name;
  const ClassInfo *HeapClass = nullptr;
  Object *ClassObj = nullptr;
  std::vector<FieldInfo> Fields;
  std::vector<uint32_t> MethodIds;

public:
  const std::string &name() const { return Name; }

  /// \returns the heap-level class descriptor.
  const ClassInfo &heapClass() const { return *HeapClass; }

  /// \returns the class object locked by static synchronized methods.
  Object *classObject() const { return ClassObj; }

  const std::vector<FieldInfo> &fields() const { return Fields; }

  /// \returns the slot of field \p FieldName, or -1 if undeclared.
  int32_t fieldSlot(const std::string &FieldName) const;

  /// \returns the declared kind of the field in \p Slot.
  ValueKind fieldKind(uint32_t Slot) const;

  const std::vector<uint32_t> &methodIds() const { return MethodIds; }
};

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_KLASS_H

//===- vm/Value.h - microjvm tagged values ---------------------*- C++ -*-===//
///
/// \file
/// The interpreter's tagged value: a 32-bit int or an object reference.
/// Object field slots are raw 64-bit words; Values encode into them using
/// the field's declared kind, so the heap layer stays type-agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_VALUE_H
#define THINLOCKS_VM_VALUE_H

#include "heap/Object.h"

#include <cassert>
#include <cstdint>

namespace thinlocks {
namespace vm {

/// Declared type of a field or value.
enum class ValueKind : uint8_t { Int, Ref };

/// A tagged int-or-reference.
class Value {
  ValueKind Kind;
  union {
    int32_t Int;
    Object *Ref;
  };

public:
  /// Default: int 0.
  Value() : Kind(ValueKind::Int), Int(0) {}

  static Value makeInt(int32_t V) {
    Value Result;
    Result.Kind = ValueKind::Int;
    Result.Int = V;
    return Result;
  }

  static Value makeRef(Object *O) {
    Value Result;
    Result.Kind = ValueKind::Ref;
    Result.Ref = O;
    return Result;
  }

  static Value null() { return makeRef(nullptr); }

  bool isInt() const { return Kind == ValueKind::Int; }
  bool isRef() const { return Kind == ValueKind::Ref; }

  int32_t asInt() const {
    assert(isInt() && "value is not an int");
    return Int;
  }

  Object *asRef() const {
    assert(isRef() && "value is not a reference");
    return Ref;
  }

  /// Encodes into a raw object field slot of kind \p K.
  uint64_t encode(ValueKind K) const {
    if (K == ValueKind::Int)
      return static_cast<uint64_t>(static_cast<uint32_t>(asInt()));
    return reinterpret_cast<uint64_t>(asRef());
  }

  /// Decodes from a raw object field slot of kind \p K.
  static Value decode(uint64_t Raw, ValueKind K) {
    if (K == ValueKind::Int)
      return makeInt(static_cast<int32_t>(static_cast<uint32_t>(Raw)));
    return makeRef(reinterpret_cast<Object *>(Raw));
  }
};

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_VALUE_H

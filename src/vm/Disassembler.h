//===- vm/Disassembler.h - Bytecode listings --------------------*- C++ -*-===//
///
/// \file
/// Renders microjvm methods as javap-style listings, for debugging,
/// examples, and golden tests of the assembler.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_DISASSEMBLER_H
#define THINLOCKS_VM_DISASSEMBLER_H

#include "vm/Method.h"

#include <string>

namespace thinlocks {
namespace vm {

class VM;

/// Formats one instruction ("12: if_icmpge 20").
std::string formatInstruction(const Instruction &Inst, uint32_t Pc);

/// Renders \p M's whole body, one instruction per line, with a header
/// describing flags, arity, and locals.  If \p Vm is non-null, invoke
/// targets are annotated with the callee's name.
std::string disassemble(const Method &M, const VM *Vm = nullptr);

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_DISASSEMBLER_H

//===- vm/NativeLibrary.cpp - Thread-safe library classes -----------------===//

#include "vm/NativeLibrary.h"

#include <cassert>
#include <thread>

using namespace thinlocks;
using namespace thinlocks::vm;

NativeLibrary::NativeLibrary(VM &Vm) {
  installVector(Vm);
  installHashtable(Vm);
  installBitSet(Vm);
  installStringBuffer(Vm);
  installThread(Vm);
}

template <typename MapT>
static auto &fetchData(std::mutex &MapMutex, MapT &Map, const Object *Obj) {
  std::lock_guard<std::mutex> Guard(MapMutex);
  auto It = Map.find(Obj);
  if (It == Map.end())
    It = Map.emplace(Obj, std::make_unique<
                              typename MapT::mapped_type::element_type>())
             .first;
  return *It->second;
}

NativeLibrary::VectorData &NativeLibrary::vectorData(const Object *Obj) {
  return fetchData(MapMutex, Vectors, Obj);
}
NativeLibrary::HashtableData &
NativeLibrary::hashtableData(const Object *Obj) {
  return fetchData(MapMutex, Hashtables, Obj);
}
NativeLibrary::BitSetData &NativeLibrary::bitSetData(const Object *Obj) {
  return fetchData(MapMutex, BitSets, Obj);
}
NativeLibrary::StringBufferData &
NativeLibrary::stringBufferData(const Object *Obj) {
  return fetchData(MapMutex, StringBuffers, Obj);
}

void NativeLibrary::installVector(VM &Vm) {
  VectorKlass = &Vm.defineClass("java/util/Vector", {});
  MethodTraits Sync;
  Sync.IsSynchronized = true;

  VecAdd = &Vm.defineNativeMethod(
      *VectorKlass, "addElement", Sync, /*NumArgs=*/2,
      /*ReturnsValue=*/false,
      [this](VM &, const ThreadContext &, std::span<Value> Args,
             Value &) -> Trap {
        vectorData(Args[0].asRef()).Elements.push_back(Args[1]);
        return Trap::None;
      });

  VecAt = &Vm.defineNativeMethod(
      *VectorKlass, "elementAt", Sync, /*NumArgs=*/2,
      /*ReturnsValue=*/true,
      [this](VM &, const ThreadContext &, std::span<Value> Args,
             Value &Result) -> Trap {
        if (!Args[1].isInt())
          return Trap::BadBytecode;
        VectorData &Data = vectorData(Args[0].asRef());
        int32_t Index = Args[1].asInt();
        if (Index < 0 ||
            static_cast<size_t>(Index) >= Data.Elements.size())
          return Trap::IndexOutOfBounds;
        Result = Data.Elements[Index];
        return Trap::None;
      });

  VecSize = &Vm.defineNativeMethod(
      *VectorKlass, "size", Sync, /*NumArgs=*/1, /*ReturnsValue=*/true,
      [this](VM &, const ThreadContext &, std::span<Value> Args,
             Value &Result) -> Trap {
        Result = Value::makeInt(static_cast<int32_t>(
            vectorData(Args[0].asRef()).Elements.size()));
        return Trap::None;
      });

  VecClear = &Vm.defineNativeMethod(
      *VectorKlass, "removeAllElements", Sync, /*NumArgs=*/1,
      /*ReturnsValue=*/false,
      [this](VM &, const ThreadContext &, std::span<Value> Args,
             Value &) -> Trap {
        vectorData(Args[0].asRef()).Elements.clear();
        return Trap::None;
      });
}

void NativeLibrary::installHashtable(VM &Vm) {
  HashtableKlass = &Vm.defineClass("java/util/Hashtable", {});
  MethodTraits Sync;
  Sync.IsSynchronized = true;

  HashPut = &Vm.defineNativeMethod(
      *HashtableKlass, "put", Sync, /*NumArgs=*/3, /*ReturnsValue=*/true,
      [this](VM &, const ThreadContext &, std::span<Value> Args,
             Value &Result) -> Trap {
        if (!Args[1].isInt())
          return Trap::BadBytecode;
        HashtableData &Data = hashtableData(Args[0].asRef());
        auto It = Data.Entries.find(Args[1].asInt());
        Result = It == Data.Entries.end() ? Value::null() : It->second;
        Data.Entries[Args[1].asInt()] = Args[2];
        return Trap::None;
      });

  HashGet = &Vm.defineNativeMethod(
      *HashtableKlass, "get", Sync, /*NumArgs=*/2, /*ReturnsValue=*/true,
      [this](VM &, const ThreadContext &, std::span<Value> Args,
             Value &Result) -> Trap {
        if (!Args[1].isInt())
          return Trap::BadBytecode;
        HashtableData &Data = hashtableData(Args[0].asRef());
        auto It = Data.Entries.find(Args[1].asInt());
        Result = It == Data.Entries.end() ? Value::null() : It->second;
        return Trap::None;
      });

  HashSize = &Vm.defineNativeMethod(
      *HashtableKlass, "size", Sync, /*NumArgs=*/1, /*ReturnsValue=*/true,
      [this](VM &, const ThreadContext &, std::span<Value> Args,
             Value &Result) -> Trap {
        Result = Value::makeInt(static_cast<int32_t>(
            hashtableData(Args[0].asRef()).Entries.size()));
        return Trap::None;
      });

  HashHas = &Vm.defineNativeMethod(
      *HashtableKlass, "containsKey", Sync, /*NumArgs=*/2,
      /*ReturnsValue=*/true,
      [this](VM &, const ThreadContext &, std::span<Value> Args,
             Value &Result) -> Trap {
        if (!Args[1].isInt())
          return Trap::BadBytecode;
        HashtableData &Data = hashtableData(Args[0].asRef());
        Result = Value::makeInt(
            Data.Entries.count(Args[1].asInt()) != 0 ? 1 : 0);
        return Trap::None;
      });
}

void NativeLibrary::installBitSet(VM &Vm) {
  BitSetKlass = &Vm.defineClass("java/util/BitSet", {});
  MethodTraits Sync;
  Sync.IsSynchronized = true;
  MethodTraits Plain;

  auto WordIndex = [](int32_t Bit) { return static_cast<size_t>(Bit) / 64; };
  auto BitMask = [](int32_t Bit) {
    return uint64_t(1) << (static_cast<uint32_t>(Bit) % 64);
  };

  BitsSet = &Vm.defineNativeMethod(
      *BitSetKlass, "set", Sync, /*NumArgs=*/2, /*ReturnsValue=*/false,
      [this, WordIndex, BitMask](VM &, const ThreadContext &,
                                 std::span<Value> Args, Value &) -> Trap {
        if (!Args[1].isInt() || Args[1].asInt() < 0)
          return Trap::IndexOutOfBounds;
        BitSetData &Data = bitSetData(Args[0].asRef());
        size_t Word = WordIndex(Args[1].asInt());
        if (Word >= Data.Words.size())
          Data.Words.resize(Word + 1, 0);
        Data.Words[Word] |= BitMask(Args[1].asInt());
        return Trap::None;
      });

  BitsClear = &Vm.defineNativeMethod(
      *BitSetKlass, "clear", Sync, /*NumArgs=*/2, /*ReturnsValue=*/false,
      [this, WordIndex, BitMask](VM &, const ThreadContext &,
                                 std::span<Value> Args, Value &) -> Trap {
        if (!Args[1].isInt() || Args[1].asInt() < 0)
          return Trap::IndexOutOfBounds;
        BitSetData &Data = bitSetData(Args[0].asRef());
        size_t Word = WordIndex(Args[1].asInt());
        if (Word < Data.Words.size())
          Data.Words[Word] &= ~BitMask(Args[1].asInt());
        return Trap::None;
      });

  // The jax pattern (§3.4): get() is NOT a synchronized method, but after
  // its argument checks it enters a synchronized block on `this`.
  BitsGet = &Vm.defineNativeMethod(
      *BitSetKlass, "get", Plain, /*NumArgs=*/2, /*ReturnsValue=*/true,
      [this, WordIndex, BitMask](VM &Vm, const ThreadContext &Thread,
                                 std::span<Value> Args,
                                 Value &Result) -> Trap {
        if (!Args[1].isInt() || Args[1].asInt() < 0)
          return Trap::IndexOutOfBounds;
        Object *Self = Args[0].asRef();
        if (!Self)
          return Trap::NullPointer;
        Vm.sync().lock(Self, Thread);
        BitSetData &Data = bitSetData(Self);
        size_t Word = WordIndex(Args[1].asInt());
        bool Bit = Word < Data.Words.size() &&
                   (Data.Words[Word] & BitMask(Args[1].asInt())) != 0;
        bool Unlocked = Vm.sync().unlockChecked(Self, Thread);
        assert(Unlocked && "BitSet.get's synchronized block unbalanced");
        (void)Unlocked;
        Result = Value::makeInt(Bit ? 1 : 0);
        return Trap::None;
      });
}

void NativeLibrary::installStringBuffer(VM &Vm) {
  StringBufferKlass = &Vm.defineClass("java/lang/StringBuffer", {});
  MethodTraits Sync;
  Sync.IsSynchronized = true;

  SbAppend = &Vm.defineNativeMethod(
      *StringBufferKlass, "append", Sync, /*NumArgs=*/2,
      /*ReturnsValue=*/true,
      [this](VM &, const ThreadContext &, std::span<Value> Args,
             Value &Result) -> Trap {
        if (!Args[1].isInt())
          return Trap::BadBytecode;
        stringBufferData(Args[0].asRef()).Chars.push_back(Args[1].asInt());
        Result = Args[0]; // append returns this, as in Java.
        return Trap::None;
      });

  SbLength = &Vm.defineNativeMethod(
      *StringBufferKlass, "length", Sync, /*NumArgs=*/1,
      /*ReturnsValue=*/true,
      [this](VM &, const ThreadContext &, std::span<Value> Args,
             Value &Result) -> Trap {
        Result = Value::makeInt(static_cast<int32_t>(
            stringBufferData(Args[0].asRef()).Chars.size()));
        return Trap::None;
      });
}

void NativeLibrary::installThread(VM &Vm) {
  ThreadKlass = &Vm.defineClass("java/lang/Thread", {});
  MethodTraits StaticPlain;
  StaticPlain.IsStatic = true;

  Yield = &Vm.defineNativeMethod(
      *ThreadKlass, "yield", StaticPlain, /*NumArgs=*/0,
      /*ReturnsValue=*/false,
      [](VM &, const ThreadContext &, std::span<Value>, Value &) -> Trap {
        std::this_thread::yield();
        return Trap::None;
      });
}

//===- vm/Disassembler.cpp - Bytecode listings ----------------------------===//

#include "vm/Disassembler.h"

#include "vm/Klass.h"
#include "vm/VM.h"

#include <cstdio>

using namespace thinlocks;
using namespace thinlocks::vm;

namespace {

/// Operand signature of an opcode, for formatting purposes.
enum class OperandKind { None, Immediate, Local, LocalWithDelta, Branch,
                         ClassIndex, FieldSlot, MethodId };

OperandKind operandKindOf(Opcode Op) {
  switch (Op) {
  case Opcode::Iconst:
    return OperandKind::Immediate;
  case Opcode::Iload:
  case Opcode::Istore:
  case Opcode::Aload:
  case Opcode::Astore:
    return OperandKind::Local;
  case Opcode::Iinc:
    return OperandKind::LocalWithDelta;
  case Opcode::Goto:
  case Opcode::IfIcmpLt:
  case Opcode::IfIcmpGe:
  case Opcode::IfIcmpEq:
  case Opcode::IfIcmpNe:
  case Opcode::Ifeq:
  case Opcode::Ifne:
  case Opcode::IfNull:
  case Opcode::IfNonNull:
    return OperandKind::Branch;
  case Opcode::New:
    return OperandKind::ClassIndex;
  case Opcode::GetField:
  case Opcode::PutField:
    return OperandKind::FieldSlot;
  case Opcode::Invoke:
    return OperandKind::MethodId;
  default:
    return OperandKind::None;
  }
}

} // namespace

std::string vm::formatInstruction(const Instruction &Inst, uint32_t Pc) {
  char Buffer[128];
  const char *Name = opcodeName(Inst.Op);
  switch (operandKindOf(Inst.Op)) {
  case OperandKind::None:
    std::snprintf(Buffer, sizeof(Buffer), "%4u: %s", Pc, Name);
    break;
  case OperandKind::Immediate:
  case OperandKind::Local:
  case OperandKind::Branch:
  case OperandKind::ClassIndex:
  case OperandKind::FieldSlot:
  case OperandKind::MethodId:
    std::snprintf(Buffer, sizeof(Buffer), "%4u: %s %d", Pc, Name, Inst.A);
    break;
  case OperandKind::LocalWithDelta:
    std::snprintf(Buffer, sizeof(Buffer), "%4u: %s %d, %d", Pc, Name,
                  Inst.A, Inst.B);
    break;
  }
  return Buffer;
}

std::string vm::disassemble(const Method &M, const VM *Vm) {
  std::string Out;
  Out += M.Traits.IsStatic ? "static " : "";
  Out += M.Traits.IsSynchronized ? "synchronized " : "";
  Out += M.Traits.IsNative ? "native " : "";
  Out += M.Owner ? M.Owner->name() + "." : std::string();
  Out += M.Name;
  char Header[96];
  std::snprintf(Header, sizeof(Header), "  (args=%u, locals=%u, id=%u)\n",
                M.NumArgs, M.NumLocals, M.Id);
  Out += Header;

  if (M.Traits.IsNative) {
    Out += "  <native code>\n";
    return Out;
  }

  for (uint32_t Pc = 0; Pc < M.Code.size(); ++Pc) {
    const Instruction &Inst = M.Code[Pc];
    Out += "  " + formatInstruction(Inst, Pc);
    if (Inst.Op == Opcode::Invoke && Vm) {
      if (const Method *Callee =
              Vm->methodById(static_cast<uint32_t>(Inst.A)))
        Out += "  // " + (Callee->Owner ? Callee->Owner->name() + "."
                                        : std::string()) +
               Callee->Name;
    }
    Out += '\n';
  }
  return Out;
}

//===- vm/Verifier.cpp - Static bytecode verification ---------------------===//

#include "vm/Verifier.h"

#include "vm/VM.h"

#include <cassert>
#include <deque>
#include <vector>

using namespace thinlocks;
using namespace thinlocks::vm;

namespace {

/// Three-point type lattice.  Unknown = "statically untracked" (method
/// arguments, field loads, mixed merges); uses of Unknown values remain
/// dynamically checked by the interpreter.
enum class AbstractType : uint8_t { Unknown, Int, Ref };

bool intCompatible(AbstractType T) { return T != AbstractType::Ref; }
bool refCompatible(AbstractType T) { return T != AbstractType::Int; }

AbstractType mergeTypes(AbstractType A, AbstractType B) {
  return A == B ? A : AbstractType::Unknown;
}

/// Abstract machine state at one program point.
struct AbsState {
  std::vector<AbstractType> Locals;
  std::vector<AbstractType> Stack;
  uint32_t MonitorDepth = 0;
  bool Reached = false;
};

/// What a callee does to the caller's stack.
struct CalleeEffect {
  bool PushesValue = false;
  AbstractType ValueType = AbstractType::Unknown;
  bool Inconsistent = false; // Mixes void and value returns.
};

CalleeEffect calleeEffect(const VM &Vm, const Method &Callee) {
  CalleeEffect Effect;
  if (Callee.Traits.IsNative) {
    Effect.PushesValue = Vm.nativeReturnsValue(Callee.Id);
    return Effect;
  }
  bool HasVoid = false, HasInt = false, HasRef = false;
  for (const Instruction &I : Callee.Code) {
    if (I.Op == Opcode::Return)
      HasVoid = true;
    else if (I.Op == Opcode::Ireturn)
      HasInt = true;
    else if (I.Op == Opcode::Areturn)
      HasRef = true;
  }
  Effect.PushesValue = HasInt || HasRef;
  Effect.Inconsistent = HasVoid && Effect.PushesValue;
  if (HasInt && !HasRef)
    Effect.ValueType = AbstractType::Int;
  else if (HasRef && !HasInt)
    Effect.ValueType = AbstractType::Ref;
  return Effect;
}

/// The per-method dataflow engine.
class MethodVerifier {
  const VM &Vm;
  const Method &M;
  uint32_t MaxStackDepth;
  std::vector<AbsState> InStates;
  std::deque<uint32_t> Worklist;
  std::optional<VerifyError> Error;

public:
  MethodVerifier(const VM &Vm, const Method &M, uint32_t MaxStackDepth)
      : Vm(Vm), M(M), MaxStackDepth(MaxStackDepth) {}

  std::optional<VerifyError> run() {
    if (M.Code.empty())
      return VerifyError{0, "method has no code"};

    InStates.resize(M.Code.size());
    AbsState Entry;
    Entry.Locals.assign(M.NumLocals, AbstractType::Unknown);
    Entry.Reached = true;
    InStates[0] = Entry;
    Worklist.push_back(0);

    while (!Worklist.empty() && !Error) {
      uint32_t Pc = Worklist.front();
      Worklist.pop_front();
      step(Pc);
    }
    return Error;
  }

private:
  void fail(uint32_t Pc, std::string Message) {
    if (!Error)
      Error = VerifyError{Pc, std::move(Message)};
  }

  bool pop(AbsState &S, uint32_t Pc, AbstractType &Out) {
    if (S.Stack.empty()) {
      fail(Pc, "operand stack underflow");
      return false;
    }
    Out = S.Stack.back();
    S.Stack.pop_back();
    return true;
  }

  bool popInt(AbsState &S, uint32_t Pc) {
    AbstractType T;
    if (!pop(S, Pc, T))
      return false;
    if (!intCompatible(T)) {
      fail(Pc, "expected an int on the stack, found a reference");
      return false;
    }
    return true;
  }

  bool popRef(AbsState &S, uint32_t Pc) {
    AbstractType T;
    if (!pop(S, Pc, T))
      return false;
    if (!refCompatible(T)) {
      fail(Pc, "expected a reference on the stack, found an int");
      return false;
    }
    return true;
  }

  bool push(AbsState &S, uint32_t Pc, AbstractType T) {
    if (S.Stack.size() >= MaxStackDepth) {
      fail(Pc, "operand stack exceeds the verifier's depth bound");
      return false;
    }
    S.Stack.push_back(T);
    return true;
  }

  bool checkLocal(uint32_t Pc, int32_t Index) {
    if (Index < 0 || Index >= M.NumLocals) {
      fail(Pc, "local variable index out of range");
      return false;
    }
    return true;
  }

  /// Flows \p S into \p Target, merging and re-enqueueing on change.
  void flowTo(uint32_t Pc, int32_t Target, const AbsState &S) {
    if (Target < 0 || static_cast<size_t>(Target) >= M.Code.size()) {
      fail(Pc, "branch target out of range");
      return;
    }
    AbsState &In = InStates[Target];
    if (!In.Reached) {
      In = S;
      In.Reached = true;
      Worklist.push_back(Target);
      return;
    }
    if (In.Stack.size() != S.Stack.size()) {
      fail(Pc, "inconsistent operand stack depth at merge point");
      return;
    }
    if (In.MonitorDepth != S.MonitorDepth) {
      fail(Pc, "inconsistent monitor nesting depth at merge point "
               "(unstructured locking)");
      return;
    }
    bool Changed = false;
    for (size_t I = 0; I < In.Stack.size(); ++I) {
      AbstractType Merged = mergeTypes(In.Stack[I], S.Stack[I]);
      if (Merged != In.Stack[I]) {
        In.Stack[I] = Merged;
        Changed = true;
      }
    }
    for (size_t I = 0; I < In.Locals.size(); ++I) {
      AbstractType Merged = mergeTypes(In.Locals[I], S.Locals[I]);
      if (Merged != In.Locals[I]) {
        In.Locals[I] = Merged;
        Changed = true;
      }
    }
    if (Changed)
      Worklist.push_back(Target);
  }

  void fallThrough(uint32_t Pc, const AbsState &S) {
    if (Pc + 1 >= M.Code.size()) {
      fail(Pc, "control flow falls off the end of the code");
      return;
    }
    flowTo(Pc, static_cast<int32_t>(Pc + 1), S);
  }

  void checkReturn(uint32_t Pc, const AbsState &S) {
    if (S.MonitorDepth != 0)
      fail(Pc, "return while still holding a block-structured monitor");
  }

  void step(uint32_t Pc) {
    AbsState S = InStates[Pc]; // Work on a copy.
    const Instruction &I = M.Code[Pc];

    switch (I.Op) {
    case Opcode::Nop:
    case Opcode::Yield:
      fallThrough(Pc, S);
      break;

    case Opcode::Iconst:
      if (push(S, Pc, AbstractType::Int))
        fallThrough(Pc, S);
      break;

    case Opcode::AconstNull:
      if (push(S, Pc, AbstractType::Ref))
        fallThrough(Pc, S);
      break;

    case Opcode::Iload:
      if (!checkLocal(Pc, I.A))
        break;
      if (!intCompatible(S.Locals[I.A])) {
        fail(Pc, "iload of a reference-typed local");
        break;
      }
      S.Locals[I.A] = AbstractType::Int;
      if (push(S, Pc, AbstractType::Int))
        fallThrough(Pc, S);
      break;

    case Opcode::Aload:
      if (!checkLocal(Pc, I.A))
        break;
      if (!refCompatible(S.Locals[I.A])) {
        fail(Pc, "aload of an int-typed local");
        break;
      }
      S.Locals[I.A] = AbstractType::Ref;
      if (push(S, Pc, AbstractType::Ref))
        fallThrough(Pc, S);
      break;

    case Opcode::Istore:
      if (!checkLocal(Pc, I.A) || !popInt(S, Pc))
        break;
      S.Locals[I.A] = AbstractType::Int;
      fallThrough(Pc, S);
      break;

    case Opcode::Astore:
      if (!checkLocal(Pc, I.A) || !popRef(S, Pc))
        break;
      S.Locals[I.A] = AbstractType::Ref;
      fallThrough(Pc, S);
      break;

    case Opcode::Iinc:
      if (!checkLocal(Pc, I.A))
        break;
      if (!intCompatible(S.Locals[I.A])) {
        fail(Pc, "iinc of a reference-typed local");
        break;
      }
      S.Locals[I.A] = AbstractType::Int;
      fallThrough(Pc, S);
      break;

    case Opcode::Iadd:
    case Opcode::Isub:
    case Opcode::Imul:
    case Opcode::Idiv:
    case Opcode::Irem:
      if (!popInt(S, Pc) || !popInt(S, Pc))
        break;
      if (push(S, Pc, AbstractType::Int))
        fallThrough(Pc, S);
      break;

    case Opcode::Ineg:
      if (!popInt(S, Pc))
        break;
      if (push(S, Pc, AbstractType::Int))
        fallThrough(Pc, S);
      break;

    case Opcode::Dup: {
      AbstractType T;
      if (!pop(S, Pc, T))
        break;
      if (push(S, Pc, T) && push(S, Pc, T))
        fallThrough(Pc, S);
      break;
    }

    case Opcode::Pop: {
      AbstractType T;
      if (pop(S, Pc, T))
        fallThrough(Pc, S);
      break;
    }

    case Opcode::Swap: {
      AbstractType B, A;
      if (!pop(S, Pc, B) || !pop(S, Pc, A))
        break;
      if (push(S, Pc, B) && push(S, Pc, A))
        fallThrough(Pc, S);
      break;
    }

    case Opcode::Goto:
      flowTo(Pc, I.A, S);
      break;

    case Opcode::IfIcmpLt:
    case Opcode::IfIcmpGe:
    case Opcode::IfIcmpEq:
    case Opcode::IfIcmpNe:
      if (!popInt(S, Pc) || !popInt(S, Pc))
        break;
      flowTo(Pc, I.A, S);
      fallThrough(Pc, S);
      break;

    case Opcode::Ifeq:
    case Opcode::Ifne:
      if (!popInt(S, Pc))
        break;
      flowTo(Pc, I.A, S);
      fallThrough(Pc, S);
      break;

    case Opcode::IfNull:
    case Opcode::IfNonNull:
      if (!popRef(S, Pc))
        break;
      flowTo(Pc, I.A, S);
      fallThrough(Pc, S);
      break;

    case Opcode::New:
      if (!Vm.klassAtHeapIndex(static_cast<uint32_t>(I.A))) {
        fail(Pc, "new of an unknown class index");
        break;
      }
      if (push(S, Pc, AbstractType::Ref))
        fallThrough(Pc, S);
      break;

    case Opcode::GetField:
      if (!popRef(S, Pc))
        break;
      // The field's declared kind depends on the runtime class; the
      // interpreter checks it.  Statically: Unknown.
      if (push(S, Pc, AbstractType::Unknown))
        fallThrough(Pc, S);
      break;

    case Opcode::PutField: {
      AbstractType V;
      if (!pop(S, Pc, V) || !popRef(S, Pc))
        break;
      fallThrough(Pc, S);
      break;
    }

    case Opcode::MonitorEnter:
      if (!popRef(S, Pc))
        break;
      ++S.MonitorDepth;
      fallThrough(Pc, S);
      break;

    case Opcode::MonitorExit:
      if (!popRef(S, Pc))
        break;
      if (S.MonitorDepth == 0) {
        fail(Pc, "monitorexit without a matching block-structured "
                 "monitorenter");
        break;
      }
      --S.MonitorDepth;
      fallThrough(Pc, S);
      break;

    case Opcode::Invoke: {
      const Method *Callee = Vm.methodById(static_cast<uint32_t>(I.A));
      if (!Callee) {
        fail(Pc, "invoke of an unknown method id");
        break;
      }
      if (S.Stack.size() < Callee->NumArgs) {
        fail(Pc, "operand stack underflow at invoke");
        break;
      }
      CalleeEffect Effect = calleeEffect(Vm, *Callee);
      if (Effect.Inconsistent) {
        fail(Pc, "callee '" + Callee->Name +
                     "' mixes void and value returns");
        break;
      }
      // Receiver of a synchronized instance method must look like a ref.
      if (Callee->Traits.IsSynchronized && !Callee->Traits.IsStatic &&
          Callee->NumArgs > 0) {
        AbstractType Receiver = S.Stack[S.Stack.size() - Callee->NumArgs];
        if (!refCompatible(Receiver)) {
          fail(Pc, "int passed as the receiver of a synchronized method");
          break;
        }
      }
      S.Stack.resize(S.Stack.size() - Callee->NumArgs);
      if (Effect.PushesValue && !push(S, Pc, Effect.ValueType))
        break;
      fallThrough(Pc, S);
      break;
    }

    case Opcode::Return:
      checkReturn(Pc, S);
      break;

    case Opcode::Ireturn:
      if (!popInt(S, Pc))
        break;
      checkReturn(Pc, S);
      break;

    case Opcode::Areturn:
      if (!popRef(S, Pc))
        break;
      checkReturn(Pc, S);
      break;
    }
  }
};

} // namespace

Verifier::Verifier(const VM &Vm, uint32_t MaxStackDepth)
    : Vm(Vm), MaxStackDepth(MaxStackDepth) {}

std::optional<VerifyError> Verifier::verify(const Method &M) const {
  if (M.Traits.IsNative)
    return std::nullopt;
  MethodVerifier Engine(Vm, M, MaxStackDepth);
  return Engine.run();
}

std::optional<VerifyError> Verifier::verifyAll() const {
  for (uint32_t Id = 0;; ++Id) {
    const Method *M = Vm.methodById(Id);
    if (!M)
      return std::nullopt;
    if (auto Err = verify(*M)) {
      Err->Message = "in method '" + M->Name + "': " + Err->Message;
      return Err;
    }
  }
}

//===- vm/Assembler.cpp - Fluent bytecode builder -------------------------===//

#include "vm/Assembler.h"

#include <cassert>

using namespace thinlocks;
using namespace thinlocks::vm;

Assembler::Label Assembler::newLabel() {
  Label L;
  L.Id = static_cast<int32_t>(Labels.size());
  Labels.emplace_back();
  return L;
}

Assembler &Assembler::bind(Label L) {
  assert(L.Id >= 0 && static_cast<size_t>(L.Id) < Labels.size() &&
         "binding an unknown label");
  LabelState &State = Labels[L.Id];
  assert(State.Target < 0 && "label bound twice");
  State.Target = static_cast<int32_t>(Code.size());
  return *this;
}

Assembler &Assembler::emit(Opcode Op, int32_t A, int32_t B) {
  assert(!Finished && "emitting into a finished assembler");
  Code.push_back(Instruction{Op, A, B});
  return *this;
}

Assembler &Assembler::emitBranch(Opcode Op, Label Target) {
  assert(Target.Id >= 0 && static_cast<size_t>(Target.Id) < Labels.size() &&
         "branch to an unknown label");
  size_t Index = Code.size();
  emit(Op, /*A=*/-1);
  Labels[Target.Id].Fixups.push_back(Index);
  return *this;
}

Assembler &Assembler::nop() { return emit(Opcode::Nop); }
Assembler &Assembler::iconst(int32_t Value) {
  return emit(Opcode::Iconst, Value);
}
Assembler &Assembler::aconstNull() { return emit(Opcode::AconstNull); }
Assembler &Assembler::iload(int32_t Local) {
  return emit(Opcode::Iload, Local);
}
Assembler &Assembler::istore(int32_t Local) {
  return emit(Opcode::Istore, Local);
}
Assembler &Assembler::aload(int32_t Local) {
  return emit(Opcode::Aload, Local);
}
Assembler &Assembler::astore(int32_t Local) {
  return emit(Opcode::Astore, Local);
}
Assembler &Assembler::iinc(int32_t Local, int32_t Delta) {
  return emit(Opcode::Iinc, Local, Delta);
}
Assembler &Assembler::iadd() { return emit(Opcode::Iadd); }
Assembler &Assembler::isub() { return emit(Opcode::Isub); }
Assembler &Assembler::imul() { return emit(Opcode::Imul); }
Assembler &Assembler::idiv() { return emit(Opcode::Idiv); }
Assembler &Assembler::irem() { return emit(Opcode::Irem); }
Assembler &Assembler::ineg() { return emit(Opcode::Ineg); }
Assembler &Assembler::dup() { return emit(Opcode::Dup); }
Assembler &Assembler::pop() { return emit(Opcode::Pop); }
Assembler &Assembler::swap() { return emit(Opcode::Swap); }
Assembler &Assembler::newObject(int32_t ClassIndex) {
  return emit(Opcode::New, ClassIndex);
}
Assembler &Assembler::getField(int32_t Slot) {
  return emit(Opcode::GetField, Slot);
}
Assembler &Assembler::putField(int32_t Slot) {
  return emit(Opcode::PutField, Slot);
}
Assembler &Assembler::monitorEnter() { return emit(Opcode::MonitorEnter); }
Assembler &Assembler::monitorExit() { return emit(Opcode::MonitorExit); }
Assembler &Assembler::invoke(uint32_t MethodId) {
  return emit(Opcode::Invoke, static_cast<int32_t>(MethodId));
}
Assembler &Assembler::ret() { return emit(Opcode::Return); }
Assembler &Assembler::iret() { return emit(Opcode::Ireturn); }
Assembler &Assembler::aret() { return emit(Opcode::Areturn); }
Assembler &Assembler::yield() { return emit(Opcode::Yield); }

Assembler &Assembler::jmp(Label Target) {
  return emitBranch(Opcode::Goto, Target);
}
Assembler &Assembler::ifIcmpLt(Label Target) {
  return emitBranch(Opcode::IfIcmpLt, Target);
}
Assembler &Assembler::ifIcmpGe(Label Target) {
  return emitBranch(Opcode::IfIcmpGe, Target);
}
Assembler &Assembler::ifIcmpEq(Label Target) {
  return emitBranch(Opcode::IfIcmpEq, Target);
}
Assembler &Assembler::ifIcmpNe(Label Target) {
  return emitBranch(Opcode::IfIcmpNe, Target);
}
Assembler &Assembler::ifeq(Label Target) {
  return emitBranch(Opcode::Ifeq, Target);
}
Assembler &Assembler::ifne(Label Target) {
  return emitBranch(Opcode::Ifne, Target);
}
Assembler &Assembler::ifNull(Label Target) {
  return emitBranch(Opcode::IfNull, Target);
}
Assembler &Assembler::ifNonNull(Label Target) {
  return emitBranch(Opcode::IfNonNull, Target);
}

Assembler &
Assembler::synchronizedOn(int32_t RefLocal,
                          const std::function<void(Assembler &)> &Body) {
  aload(RefLocal);
  monitorEnter();
  Body(*this);
  aload(RefLocal);
  monitorExit();
  return *this;
}

Assembler &
Assembler::countedLoop(int32_t CounterLocal, int32_t LimitLocal,
                       const std::function<void(Assembler &)> &Body) {
  Label Head = newLabel();
  Label Done = newLabel();
  iconst(0);
  istore(CounterLocal);
  bind(Head);
  iload(CounterLocal);
  iload(LimitLocal);
  ifIcmpGe(Done);
  Body(*this);
  iinc(CounterLocal, 1);
  jmp(Head);
  bind(Done);
  return *this;
}

std::vector<Instruction> Assembler::finish() {
  assert(!Finished && "finish() called twice");
  for (const LabelState &State : Labels) {
    if (State.Fixups.empty())
      continue;
    assert(State.Target >= 0 && "branch to an unbound label");
    for (size_t Fixup : State.Fixups)
      Code[Fixup].A = State.Target;
  }
  Finished = true;
  return std::move(Code);
}

//===- vm/Bytecode.h - microjvm instruction set ----------------*- C++ -*-===//
///
/// \file
/// The instruction set of the microjvm, the bytecode interpreter substrate
/// standing in for the paper's interpreted JDK 1.1.2.  All of the paper's
/// measurements run on an interpreter, and both micro-benchmark families
/// (synchronized() blocks compiled to monitorenter/monitorexit, and calls
/// to synchronized methods) are representable directly:
///
///   Table 2's Sync      -> loop { MonitorEnter; Iinc; MonitorExit }
///   Table 2's CallSync  -> loop { Invoke <synchronized method> }
///
/// Instructions are a fixed-width (opcode, A, B) triple; jump targets are
/// absolute instruction indices resolved by the Assembler.
///
//===----------------------------------------------------------------------===//

#ifndef THINLOCKS_VM_BYTECODE_H
#define THINLOCKS_VM_BYTECODE_H

#include <cstdint>

namespace thinlocks {
namespace vm {

/// microjvm opcodes.  Stack effects are noted as [before] -> [after].
enum class Opcode : uint8_t {
  Nop,        ///< [] -> []
  Iconst,     ///< [] -> [A]
  AconstNull, ///< [] -> [null]
  Iload,      ///< [] -> [locals[A]]         (int local)
  Istore,     ///< [v] -> []                 (locals[A] = v)
  Aload,      ///< [] -> [locals[A]]         (ref local)
  Astore,     ///< [r] -> []                 (locals[A] = r)
  Iinc,       ///< [] -> []                  (locals[A] += B)
  Iadd,       ///< [a b] -> [a+b]
  Isub,       ///< [a b] -> [a-b]
  Imul,       ///< [a b] -> [a*b]
  Idiv,       ///< [a b] -> [a/b]            (traps on b == 0)
  Irem,       ///< [a b] -> [a%b]            (traps on b == 0)
  Ineg,       ///< [a] -> [-a]
  Dup,        ///< [v] -> [v v]
  Pop,        ///< [v] -> []
  Swap,       ///< [a b] -> [b a]
  Goto,       ///< [] -> []                  (pc = A)
  IfIcmpLt,   ///< [a b] -> []               (pc = A if a < b)
  IfIcmpGe,   ///< [a b] -> []               (pc = A if a >= b)
  IfIcmpEq,   ///< [a b] -> []               (pc = A if a == b)
  IfIcmpNe,   ///< [a b] -> []               (pc = A if a != b)
  Ifeq,       ///< [a] -> []                 (pc = A if a == 0)
  Ifne,       ///< [a] -> []                 (pc = A if a != 0)
  IfNull,     ///< [r] -> []                 (pc = A if r == null)
  IfNonNull,  ///< [r] -> []                 (pc = A if r != null)
  New,        ///< [] -> [ref]               (instance of class id A)
  GetField,   ///< [r] -> [r.field[A]]
  PutField,   ///< [r v] -> []               (r.field[A] = v)
  MonitorEnter, ///< [r] -> []               (lock r; traps on null)
  MonitorExit,  ///< [r] -> []               (unlock r; traps if not owner)
  Invoke,     ///< [args...] -> [result?]    (call method id A)
  Return,     ///< [] -> caller              (void return)
  Ireturn,    ///< [v] -> caller             (int return)
  Areturn,    ///< [r] -> caller             (ref return)
  Yield,      ///< [] -> []                  (scheduler hint)
};

/// \returns a printable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// One fixed-width instruction.
struct Instruction {
  Opcode Op = Opcode::Nop;
  int32_t A = 0;
  int32_t B = 0;
};

} // namespace vm
} // namespace thinlocks

#endif // THINLOCKS_VM_BYTECODE_H

//===- vm/Interpreter.cpp - microjvm bytecode interpreter -----------------===//

#include "vm/Interpreter.h"

#include "vm/Klass.h"

#include <cassert>
#include <thread>

using namespace thinlocks;
using namespace thinlocks::vm;

Interpreter::Interpreter(VM &Vm, const ThreadContext &Thread,
                         size_t MaxFrames)
    : Vm(Vm), Thread(Thread), MaxFrames(MaxFrames) {
  Frames.reserve(16);
  Locals.reserve(64);
  Stack.reserve(64);
}

bool Interpreter::push(Value V) {
  Stack.push_back(V);
  return true;
}

bool Interpreter::pop(Value &V) {
  if (Frames.empty() || Stack.size() <= Frames.back().StackBase)
    return false;
  V = Stack.back();
  Stack.pop_back();
  return true;
}

bool Interpreter::popInt(int32_t &V) {
  Value Tmp;
  if (!pop(Tmp) || !Tmp.isInt())
    return false;
  V = Tmp.asInt();
  return true;
}

bool Interpreter::popRef(Object *&V) {
  Value Tmp;
  if (!pop(Tmp) || !Tmp.isRef())
    return false;
  V = Tmp.asRef();
  return true;
}

Trap Interpreter::pushFrame(const Method &M, std::span<const Value> Args) {
  assert(!M.Traits.IsNative && "native methods have no frames");
  if (Frames.size() >= MaxFrames)
    return Trap::StackOverflow;
  if (Args.size() != M.NumArgs)
    return Trap::BadBytecode;

  Object *SyncObject = nullptr;
  if (M.Traits.IsSynchronized) {
    if (M.Traits.IsStatic) {
      SyncObject = M.Owner->classObject();
    } else {
      if (Args.empty() || !Args[0].isRef() || !Args[0].asRef())
        return Trap::NullPointer;
      SyncObject = Args[0].asRef();
    }
    Vm.sync().lock(SyncObject, Thread);
  }

  Frame F;
  F.M = &M;
  F.Pc = 0;
  F.LocalsBase = Locals.size();
  F.SyncObject = SyncObject;
  Locals.resize(F.LocalsBase + M.NumLocals);
  for (size_t I = 0; I < Args.size(); ++I)
    Locals[F.LocalsBase + I] = Args[I];
  F.StackBase = Stack.size();
  Frames.push_back(F);
  return Trap::None;
}

RunResult Interpreter::unwindWith(Trap T) {
  // Release every synchronized-method monitor held by unwound frames,
  // mirroring the JVM's implicit exception handler around synchronized
  // methods.
  for (size_t I = Frames.size(); I-- > 0;) {
    Frame &F = Frames[I];
    if (F.SyncObject)
      (void)Vm.sync().unlockChecked(F.SyncObject, Thread);
  }
  Frames.clear();
  Locals.clear();
  Stack.clear();
  RunResult Result;
  Result.TrapKind = T;
  return Result;
}

RunResult Interpreter::run(const Method &M, std::span<const Value> Args) {
  assert(Thread.isValid() && "interpreting with an unattached thread");

  // Top-level native invocation (used by tests; Invoke handles the
  // common nested case with the same sequence).
  if (M.Traits.IsNative) {
    RunResult Result;
    Object *Sync = nullptr;
    if (M.Traits.IsSynchronized) {
      if (M.Traits.IsStatic) {
        Sync = M.Owner->classObject();
      } else if (Args.empty() || !Args[0].isRef() || !Args[0].asRef()) {
        Result.TrapKind = Trap::NullPointer;
        return Result;
      } else {
        Sync = Args[0].asRef();
      }
      Vm.sync().lock(Sync, Thread);
    }
    std::vector<Value> ArgCopy(Args.begin(), Args.end());
    Result.TrapKind = M.Native(Vm, Thread, ArgCopy, Result.Result);
    if (Sync && !Vm.sync().unlockChecked(Sync, Thread) &&
        Result.TrapKind == Trap::None)
      Result.TrapKind = Trap::IllegalMonitorState;
    return Result;
  }

  if (Trap T = pushFrame(M, Args); T != Trap::None)
    return unwindWith(T);

  for (;;) {
    Frame &F = Frames.back();
    if (F.Pc >= F.M->Code.size())
      return unwindWith(Trap::BadBytecode); // Fell off the end.
    const Instruction Inst = F.M->Code[F.Pc++];
    ++InstructionCount;

    switch (Inst.Op) {
    case Opcode::Nop:
      break;

    case Opcode::Iconst:
      push(Value::makeInt(Inst.A));
      break;

    case Opcode::AconstNull:
      push(Value::null());
      break;

    case Opcode::Iload:
    case Opcode::Aload: {
      if (Inst.A < 0 || Inst.A >= F.M->NumLocals)
        return unwindWith(Trap::BadBytecode);
      Value V = Locals[F.LocalsBase + Inst.A];
      bool WantInt = Inst.Op == Opcode::Iload;
      if (V.isInt() != WantInt)
        return unwindWith(Trap::BadBytecode);
      push(V);
      break;
    }

    case Opcode::Istore:
    case Opcode::Astore: {
      if (Inst.A < 0 || Inst.A >= F.M->NumLocals)
        return unwindWith(Trap::BadBytecode);
      Value V;
      if (!pop(V))
        return unwindWith(Trap::BadBytecode);
      bool WantInt = Inst.Op == Opcode::Istore;
      if (V.isInt() != WantInt)
        return unwindWith(Trap::BadBytecode);
      Locals[F.LocalsBase + Inst.A] = V;
      break;
    }

    case Opcode::Iinc: {
      if (Inst.A < 0 || Inst.A >= F.M->NumLocals)
        return unwindWith(Trap::BadBytecode);
      Value &Slot = Locals[F.LocalsBase + Inst.A];
      if (!Slot.isInt())
        return unwindWith(Trap::BadBytecode);
      Slot = Value::makeInt(Slot.asInt() + Inst.B);
      break;
    }

    case Opcode::Iadd:
    case Opcode::Isub:
    case Opcode::Imul:
    case Opcode::Idiv:
    case Opcode::Irem: {
      int32_t B, A;
      if (!popInt(B) || !popInt(A))
        return unwindWith(Trap::BadBytecode);
      int32_t R = 0;
      switch (Inst.Op) {
      case Opcode::Iadd:
        R = static_cast<int32_t>(static_cast<uint32_t>(A) +
                                 static_cast<uint32_t>(B));
        break;
      case Opcode::Isub:
        R = static_cast<int32_t>(static_cast<uint32_t>(A) -
                                 static_cast<uint32_t>(B));
        break;
      case Opcode::Imul:
        R = static_cast<int32_t>(static_cast<uint32_t>(A) *
                                 static_cast<uint32_t>(B));
        break;
      case Opcode::Idiv:
        if (B == 0)
          return unwindWith(Trap::DivideByZero);
        R = (A == INT32_MIN && B == -1) ? INT32_MIN : A / B;
        break;
      case Opcode::Irem:
        if (B == 0)
          return unwindWith(Trap::DivideByZero);
        R = (A == INT32_MIN && B == -1) ? 0 : A % B;
        break;
      default:
        tlUnreachable("arith dispatch");
      }
      push(Value::makeInt(R));
      break;
    }

    case Opcode::Ineg: {
      int32_t A;
      if (!popInt(A))
        return unwindWith(Trap::BadBytecode);
      push(Value::makeInt(static_cast<int32_t>(-static_cast<uint32_t>(A))));
      break;
    }

    case Opcode::Dup: {
      Value V;
      if (!pop(V))
        return unwindWith(Trap::BadBytecode);
      push(V);
      push(V);
      break;
    }

    case Opcode::Pop: {
      Value V;
      if (!pop(V))
        return unwindWith(Trap::BadBytecode);
      break;
    }

    case Opcode::Swap: {
      Value B, A;
      if (!pop(B) || !pop(A))
        return unwindWith(Trap::BadBytecode);
      push(B);
      push(A);
      break;
    }

    case Opcode::Goto:
      F.Pc = static_cast<uint32_t>(Inst.A);
      break;

    case Opcode::IfIcmpLt:
    case Opcode::IfIcmpGe:
    case Opcode::IfIcmpEq:
    case Opcode::IfIcmpNe: {
      int32_t B, A;
      if (!popInt(B) || !popInt(A))
        return unwindWith(Trap::BadBytecode);
      bool Taken = false;
      switch (Inst.Op) {
      case Opcode::IfIcmpLt:
        Taken = A < B;
        break;
      case Opcode::IfIcmpGe:
        Taken = A >= B;
        break;
      case Opcode::IfIcmpEq:
        Taken = A == B;
        break;
      case Opcode::IfIcmpNe:
        Taken = A != B;
        break;
      default:
        tlUnreachable("icmp dispatch");
      }
      if (Taken)
        F.Pc = static_cast<uint32_t>(Inst.A);
      break;
    }

    case Opcode::Ifeq:
    case Opcode::Ifne: {
      int32_t A;
      if (!popInt(A))
        return unwindWith(Trap::BadBytecode);
      bool Taken = (Inst.Op == Opcode::Ifeq) ? (A == 0) : (A != 0);
      if (Taken)
        F.Pc = static_cast<uint32_t>(Inst.A);
      break;
    }

    case Opcode::IfNull:
    case Opcode::IfNonNull: {
      Object *Ref;
      if (!popRef(Ref))
        return unwindWith(Trap::BadBytecode);
      bool Taken =
          (Inst.Op == Opcode::IfNull) ? (Ref == nullptr) : (Ref != nullptr);
      if (Taken)
        F.Pc = static_cast<uint32_t>(Inst.A);
      break;
    }

    case Opcode::New: {
      Klass *K = Vm.klassAtHeapIndex(static_cast<uint32_t>(Inst.A));
      if (!K)
        return unwindWith(Trap::BadBytecode);
      push(Value::makeRef(Vm.newInstance(*K)));
      break;
    }

    case Opcode::GetField: {
      Object *Ref;
      if (!popRef(Ref))
        return unwindWith(Trap::BadBytecode);
      if (!Ref)
        return unwindWith(Trap::NullPointer);
      Klass *K = Vm.klassForObject(Ref);
      if (Inst.A < 0 ||
          static_cast<size_t>(Inst.A) >= K->fields().size())
        return unwindWith(Trap::BadBytecode);
      uint32_t Slot = static_cast<uint32_t>(Inst.A);
      push(Value::decode(Ref->slot(Slot), K->fieldKind(Slot)));
      break;
    }

    case Opcode::PutField: {
      Value V;
      Object *Ref;
      if (!pop(V) || !popRef(Ref))
        return unwindWith(Trap::BadBytecode);
      if (!Ref)
        return unwindWith(Trap::NullPointer);
      Klass *K = Vm.klassForObject(Ref);
      if (Inst.A < 0 ||
          static_cast<size_t>(Inst.A) >= K->fields().size())
        return unwindWith(Trap::BadBytecode);
      uint32_t Slot = static_cast<uint32_t>(Inst.A);
      ValueKind Kind = K->fieldKind(Slot);
      if (V.isInt() != (Kind == ValueKind::Int))
        return unwindWith(Trap::BadBytecode);
      Ref->setSlot(Slot, V.encode(Kind));
      break;
    }

    case Opcode::MonitorEnter: {
      Object *Ref;
      if (!popRef(Ref))
        return unwindWith(Trap::BadBytecode);
      if (!Ref)
        return unwindWith(Trap::NullPointer);
      Vm.sync().lock(Ref, Thread);
      break;
    }

    case Opcode::MonitorExit: {
      Object *Ref;
      if (!popRef(Ref))
        return unwindWith(Trap::BadBytecode);
      if (!Ref)
        return unwindWith(Trap::NullPointer);
      if (!Vm.sync().unlockChecked(Ref, Thread))
        return unwindWith(Trap::IllegalMonitorState);
      break;
    }

    case Opcode::Invoke: {
      const Method *Callee = Vm.methodById(static_cast<uint32_t>(Inst.A));
      if (!Callee)
        return unwindWith(Trap::UnknownMethod);
      if (Stack.size() - F.StackBase < Callee->NumArgs)
        return unwindWith(Trap::BadBytecode);
      std::span<Value> CallArgs(Stack.data() + Stack.size() -
                                    Callee->NumArgs,
                                Callee->NumArgs);

      if (Callee->Traits.IsNative) {
        Object *Sync = nullptr;
        if (Callee->Traits.IsSynchronized) {
          if (Callee->Traits.IsStatic) {
            Sync = Callee->Owner->classObject();
          } else if (!CallArgs[0].isRef() || !CallArgs[0].asRef()) {
            return unwindWith(Trap::NullPointer);
          } else {
            Sync = CallArgs[0].asRef();
          }
          Vm.sync().lock(Sync, Thread);
        }
        Value Result;
        Trap T = Callee->Native(Vm, Thread, CallArgs, Result);
        if (Sync && !Vm.sync().unlockChecked(Sync, Thread) &&
            T == Trap::None)
          T = Trap::IllegalMonitorState;
        if (T != Trap::None)
          return unwindWith(T);
        Stack.resize(Stack.size() - Callee->NumArgs);
        if (Vm.nativeReturnsValue(Callee->Id))
          push(Result);
        break;
      }

      // Bytecode callee: copy args into the new frame's locals, then
      // pop them.  pushFrame copies before we shrink, so the span stays
      // valid.
      Trap T = pushFrame(*Callee, CallArgs);
      if (T != Trap::None)
        return unwindWith(T);
      // The new frame's StackBase must sit below the popped arguments.
      Stack.resize(Stack.size() - Callee->NumArgs);
      Frames.back().StackBase = Stack.size();
      break;
    }

    case Opcode::Return:
    case Opcode::Ireturn:
    case Opcode::Areturn: {
      Value Result;
      bool HasResult = Inst.Op != Opcode::Return;
      if (HasResult) {
        if (!pop(Result))
          return unwindWith(Trap::BadBytecode);
        bool WantInt = Inst.Op == Opcode::Ireturn;
        if (Result.isInt() != WantInt)
          return unwindWith(Trap::BadBytecode);
      }
      Frame Finished = Frames.back();
      if (Finished.SyncObject &&
          !Vm.sync().unlockChecked(Finished.SyncObject, Thread))
        return unwindWith(Trap::IllegalMonitorState);
      Stack.resize(Finished.StackBase);
      Locals.resize(Finished.LocalsBase);
      Frames.pop_back();
      if (Frames.empty()) {
        RunResult Done;
        Done.Result = Result;
        return Done;
      }
      if (HasResult)
        push(Result);
      break;
    }

    case Opcode::Yield:
      std::this_thread::yield();
      break;
    }
  }
}

//===- vm/ExprCompiler.cpp - Arithmetic expression compiler ---------------===//

#include "vm/ExprCompiler.h"

#include "vm/Assembler.h"
#include "vm/Klass.h"
#include "vm/VM.h"

#include <cassert>
#include <cctype>
#include <cstdint>

using namespace thinlocks;
using namespace thinlocks::vm;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokenKind : uint8_t {
  Number,
  Ident,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  LParen,
  RParen,
  End,
  Bad,
};

struct Token {
  TokenKind Kind = TokenKind::End;
  int32_t Value = 0;       // Number tokens.
  std::string_view Text;   // Ident tokens.
  size_t Pos = 0;
};

class Lexer {
  std::string_view Source;
  size_t Cursor = 0;

public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  Token next() {
    while (Cursor < Source.size() &&
           std::isspace(static_cast<unsigned char>(Source[Cursor])))
      ++Cursor;
    Token Tok;
    Tok.Pos = Cursor;
    if (Cursor >= Source.size())
      return Tok; // End.

    char C = Source[Cursor];
    if (std::isdigit(static_cast<unsigned char>(C))) {
      // Parse with 64-bit accumulation so overflow is detectable.
      int64_t Value = 0;
      size_t Start = Cursor;
      while (Cursor < Source.size() &&
             std::isdigit(static_cast<unsigned char>(Source[Cursor]))) {
        Value = Value * 10 + (Source[Cursor] - '0');
        if (Value > INT32_MAX) {
          Tok.Kind = TokenKind::Bad;
          Tok.Pos = Start;
          return Tok;
        }
        ++Cursor;
      }
      Tok.Kind = TokenKind::Number;
      Tok.Value = static_cast<int32_t>(Value);
      return Tok;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Cursor;
      while (Cursor < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Source[Cursor])) ||
              Source[Cursor] == '_'))
        ++Cursor;
      Tok.Kind = TokenKind::Ident;
      Tok.Text = Source.substr(Start, Cursor - Start);
      return Tok;
    }
    ++Cursor;
    switch (C) {
    case '+':
      Tok.Kind = TokenKind::Plus;
      break;
    case '-':
      Tok.Kind = TokenKind::Minus;
      break;
    case '*':
      Tok.Kind = TokenKind::Star;
      break;
    case '/':
      Tok.Kind = TokenKind::Slash;
      break;
    case '%':
      Tok.Kind = TokenKind::Percent;
      break;
    case '(':
      Tok.Kind = TokenKind::LParen;
      break;
    case ')':
      Tok.Kind = TokenKind::RParen;
      break;
    default:
      Tok.Kind = TokenKind::Bad;
      break;
    }
    return Tok;
  }
};

//===----------------------------------------------------------------------===//
// Parser / code generator
//===----------------------------------------------------------------------===//

// Java int wrap-around arithmetic for the constant folder.
int32_t wrapAdd(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) +
                              static_cast<uint32_t>(B));
}
int32_t wrapSub(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) -
                              static_cast<uint32_t>(B));
}
int32_t wrapMul(int32_t A, int32_t B) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) *
                              static_cast<uint32_t>(B));
}

/// A parsed subexpression: either a compile-time literal (not yet
/// emitted) or a value already materialized on the operand stack.
struct Operand {
  bool IsLiteral = false;
  int32_t Literal = 0;
};

class Parser {
  Lexer Lex;
  Token Current;
  const std::vector<std::string> &Params;
  Assembler &Asm;
  std::string Error;
  size_t ErrorPos = 0;

public:
  Parser(std::string_view Source, const std::vector<std::string> &Params,
         Assembler &Asm)
      : Lex(Source), Params(Params), Asm(Asm) {
    Current = Lex.next();
  }

  bool failed() const { return !Error.empty(); }
  const std::string &error() const { return Error; }
  size_t errorPos() const { return ErrorPos; }

  /// Parses the whole source; on success the result value has been
  /// materialized on the stack.
  bool run() {
    Operand Value = parseExpr();
    if (failed())
      return false;
    if (Current.Kind != TokenKind::End) {
      fail("unexpected input after expression");
      return false;
    }
    materialize(Value);
    return true;
  }

private:
  void fail(std::string Message) {
    if (Error.empty()) {
      Error = std::move(Message);
      ErrorPos = Current.Pos;
    }
  }

  void advance() { Current = Lex.next(); }

  /// Emits a pending literal onto the operand stack.
  void materialize(const Operand &Value) {
    if (Value.IsLiteral)
      Asm.iconst(Value.Literal);
  }

  Operand emitted() { return Operand{}; }

  Operand binary(TokenKind Op, Operand Lhs, Operand Rhs) {
    // Constant folding: both literal, and not a division/modulo by a
    // literal zero (those must trap at run time).
    if (Lhs.IsLiteral && Rhs.IsLiteral) {
      bool ZeroDivide = (Op == TokenKind::Slash || Op == TokenKind::Percent) &&
                        Rhs.Literal == 0;
      if (!ZeroDivide) {
        int32_t Folded = 0;
        switch (Op) {
        case TokenKind::Plus:
          Folded = wrapAdd(Lhs.Literal, Rhs.Literal);
          break;
        case TokenKind::Minus:
          Folded = wrapSub(Lhs.Literal, Rhs.Literal);
          break;
        case TokenKind::Star:
          Folded = wrapMul(Lhs.Literal, Rhs.Literal);
          break;
        case TokenKind::Slash:
          Folded = (Lhs.Literal == INT32_MIN && Rhs.Literal == -1)
                       ? INT32_MIN
                       : Lhs.Literal / Rhs.Literal;
          break;
        case TokenKind::Percent:
          Folded = (Lhs.Literal == INT32_MIN && Rhs.Literal == -1)
                       ? 0
                       : Lhs.Literal % Rhs.Literal;
          break;
        default:
          assert(false && "not a binary operator");
        }
        return Operand{true, Folded};
      }
    }
    // Emit.  Invariants from the parse loops: an emitted LHS is already
    // on the stack beneath the RHS.  A still-literal LHS only reaches
    // here in the division-by-literal-zero case (both literal, folding
    // declined), so push it first, then the RHS.
    if (Lhs.IsLiteral)
      Asm.iconst(Lhs.Literal);
    materialize(Rhs);
    switch (Op) {
    case TokenKind::Plus:
      Asm.iadd();
      break;
    case TokenKind::Minus:
      Asm.isub();
      break;
    case TokenKind::Star:
      Asm.imul();
      break;
    case TokenKind::Slash:
      Asm.idiv();
      break;
    case TokenKind::Percent:
      Asm.irem();
      break;
    default:
      assert(false && "not a binary operator");
    }
    return emitted();
  }

  // Both binary loops share one deferred-literal scheme: while the LHS
  // is still a compile-time literal it stays *unpushed* so that a
  // literal RHS can fold.  If the RHS turns out to need code, its value
  // is now on the stack alone; pushing the literal LHS and swapping
  // restores operand order (any parse that returns "emitted" leaves its
  // complete value on the stack).
  Operand parseBinaryRhs(Operand &Lhs, Operand (Parser::*ParseRhs)()) {
    Operand Rhs;
    if (Lhs.IsLiteral) {
      Rhs = (this->*ParseRhs)();
      if (failed())
        return emitted();
      if (!Rhs.IsLiteral) {
        Asm.iconst(Lhs.Literal);
        Asm.swap();
        Lhs = emitted();
      }
    } else {
      Rhs = (this->*ParseRhs)();
      if (failed())
        return emitted();
    }
    return Rhs;
  }

  Operand parseExpr() {
    Operand Lhs = parseTerm();
    while (!failed() && (Current.Kind == TokenKind::Plus ||
                         Current.Kind == TokenKind::Minus)) {
      TokenKind Op = Current.Kind;
      advance();
      Operand Rhs = parseBinaryRhs(Lhs, &Parser::parseTerm);
      if (failed())
        return emitted();
      Lhs = binary(Op, Lhs, Rhs);
    }
    return Lhs;
  }

  Operand parseTerm() {
    Operand Lhs = parseUnary();
    while (!failed() && (Current.Kind == TokenKind::Star ||
                         Current.Kind == TokenKind::Slash ||
                         Current.Kind == TokenKind::Percent)) {
      TokenKind Op = Current.Kind;
      advance();
      Operand Rhs = parseBinaryRhs(Lhs, &Parser::parseUnary);
      if (failed())
        return emitted();
      Lhs = binary(Op, Lhs, Rhs);
    }
    return Lhs;
  }

  Operand parseUnary() {
    if (Current.Kind == TokenKind::Minus) {
      advance();
      Operand Value = parseUnary();
      if (failed())
        return emitted();
      if (Value.IsLiteral)
        return Operand{true, wrapSub(0, Value.Literal)};
      Asm.ineg();
      return emitted();
    }
    return parsePrimary();
  }

  Operand parsePrimary() {
    switch (Current.Kind) {
    case TokenKind::Number: {
      Operand Value{true, Current.Value};
      advance();
      return Value;
    }
    case TokenKind::Ident: {
      for (size_t I = 0; I < Params.size(); ++I) {
        if (Params[I] == Current.Text) {
          advance();
          Asm.iload(static_cast<int32_t>(I));
          return emitted();
        }
      }
      fail("unknown parameter '" + std::string(Current.Text) + "'");
      return emitted();
    }
    case TokenKind::LParen: {
      advance();
      Operand Value = parseExpr();
      if (failed())
        return emitted();
      if (Current.Kind != TokenKind::RParen) {
        fail("expected ')'");
        return emitted();
      }
      advance();
      return Value;
    }
    case TokenKind::Bad:
      fail("unrecognized character or numeric literal out of range");
      return emitted();
    case TokenKind::End:
      fail("unexpected end of expression");
      return emitted();
    default:
      fail("expected a number, parameter, or '('");
      return emitted();
    }
  }
};

} // namespace

ExprCompiler::Result ExprCompiler::compile(
    std::string_view Source, const std::vector<std::string> &Params,
    std::string MethodName) {
  Result Out;
  Assembler Asm;
  Parser P(Source, Params, Asm);
  if (!P.run()) {
    Out.Error = P.error();
    Out.ErrorPos = P.errorPos();
    return Out;
  }
  Asm.iret();
  Out.M = &Vm.defineMethod(Owner, std::move(MethodName), MethodTraits{},
                           static_cast<uint16_t>(Params.size()),
                           static_cast<uint16_t>(Params.size()),
                           Asm.finish());
  return Out;
}

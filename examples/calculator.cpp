//===- examples/calculator.cpp - Compile-and-run expressions --------------===//
//
// The microjvm as a tiny language runtime: compiles an arithmetic
// expression to bytecode (with constant folding), shows the listing,
// verifies it statically, and runs it.
//
// Usage:  ./build/examples/calculator "x * (x + 1) / 2 - y" x=10 y=5
//         ./build/examples/calculator            # runs a demo expression
//
//===----------------------------------------------------------------------===//

#include "vm/Disassembler.h"
#include "vm/ExprCompiler.h"
#include "vm/Verifier.h"
#include "vm/VM.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace thinlocks;
using namespace thinlocks::vm;

int main(int Argc, char **Argv) {
  std::string Source =
      Argc > 1 ? Argv[1] : "2 + 3 * 4 - x * (y - 1) / 2";
  std::vector<std::string> Params;
  std::vector<Value> Args;
  for (int I = 2; I < Argc; ++I) {
    const char *Eq = std::strchr(Argv[I], '=');
    if (!Eq) {
      std::fprintf(stderr, "argument '%s' is not name=value\n", Argv[I]);
      return 1;
    }
    Params.emplace_back(Argv[I], Eq - Argv[I]);
    Args.push_back(Value::makeInt(std::atoi(Eq + 1)));
  }
  if (Argc <= 1) {
    Params = {"x", "y"};
    Args = {Value::makeInt(8), Value::makeInt(5)};
  }

  VM Vm;
  Klass &K = Vm.defineClass("calc/Expr", {});
  ExprCompiler Compiler(Vm, K);

  ExprCompiler::Result R = Compiler.compile(Source, Params);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s\n  %s\n  %*s^\n", R.Error.c_str(),
                 Source.c_str(), static_cast<int>(R.ErrorPos), "");
    return 1;
  }

  std::printf("compiled \"%s\":\n%s\n", Source.c_str(),
              disassemble(*R.M, &Vm).c_str());

  if (auto Err = Verifier(Vm).verify(*R.M)) {
    std::fprintf(stderr, "verifier rejected output at pc %u: %s\n",
                 Err->Pc, Err->Message.c_str());
    return 1;
  }
  std::printf("verifier: ok\n\n");

  ScopedThreadAttachment Main(Vm.threads(), "calc");
  RunResult Run = Vm.call(*R.M, Args, Main.context());
  if (!Run.ok()) {
    std::fprintf(stderr, "execution trapped: %s\n",
                 trapName(Run.TrapKind));
    return 1;
  }
  for (size_t I = 0; I < Params.size(); ++I)
    std::printf("  %s = %d\n", Params[I].c_str(), Args[I].asInt());
  std::printf("  result = %d\n", Run.Result.asInt());
  return 0;
}

//===- examples/bounded_buffer.cpp - wait/notify producer-consumer --------===//
//
// A classic Java-style bounded buffer whose mutual exclusion *and*
// condition waiting run entirely on object monitors: thin locks that
// inflate on the first wait(), after which the fat lock's FIFO wait set
// takes over.  Demonstrates the full monitor API (lock / unlock / wait /
// notifyAll) under real multi-threading.
//
// Build & run:  ./build/examples/bounded_buffer [items] [producers] [consumers]
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {

/// A bounded FIFO guarded by one heap object's monitor — the same
/// pattern as a `synchronized` Java queue with wait/notifyAll.
class BoundedBuffer {
  ThinLockManager &Locks;
  Object *Monitor;
  std::deque<long> Items; // Guarded by Monitor.
  size_t Capacity;

public:
  BoundedBuffer(ThinLockManager &Locks, Object *Monitor, size_t Capacity)
      : Locks(Locks), Monitor(Monitor), Capacity(Capacity) {}

  void put(long Value, const ThreadContext &Me) {
    Locks.lock(Monitor, Me);
    while (Items.size() == Capacity)
      Locks.wait(Monitor, Me, -1);
    Items.push_back(Value);
    Locks.notifyAll(Monitor, Me);
    Locks.unlock(Monitor, Me);
  }

  long take(const ThreadContext &Me) {
    Locks.lock(Monitor, Me);
    while (Items.empty())
      Locks.wait(Monitor, Me, -1);
    long Value = Items.front();
    Items.pop_front();
    Locks.notifyAll(Monitor, Me);
    Locks.unlock(Monitor, Me);
    return Value;
  }
};

} // namespace

int main(int Argc, char **Argv) {
  long Items = Argc > 1 ? std::atol(Argv[1]) : 20000;
  int Producers = Argc > 2 ? std::atoi(Argv[2]) : 2;
  int Consumers = Argc > 3 ? std::atoi(Argv[3]) : 2;

  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks(Monitors, &Stats);

  const ClassInfo &Class = TheHeap.classes().registerClass("Buffer", 0);
  Object *MonitorObj = TheHeap.allocate(Class);
  BoundedBuffer Buffer(Locks, MonitorObj, /*Capacity=*/16);

  long PerProducer = Items / Producers;
  long TotalProduced = PerProducer * Producers;

  std::vector<std::thread> Threads;
  std::atomic<long> ConsumedSum{0};
  std::atomic<long> ConsumedCount{0};

  for (int P = 0; P < Producers; ++P) {
    Threads.emplace_back([&, P] {
      ScopedThreadAttachment Me(Registry, "producer");
      for (long I = 0; I < PerProducer; ++I)
        Buffer.put(P * PerProducer + I, Me.context());
    });
  }
  for (int C = 0; C < Consumers; ++C) {
    Threads.emplace_back([&] {
      ScopedThreadAttachment Me(Registry, "consumer");
      for (;;) {
        if (ConsumedCount.fetch_add(1) >= TotalProduced) {
          ConsumedCount.fetch_sub(1);
          return;
        }
        ConsumedSum.fetch_add(Buffer.take(Me.context()));
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  long Expected = 0;
  for (long I = 0; I < TotalProduced; ++I)
    Expected += I;

  std::printf("produced %ld items with %d producers / %d consumers\n",
              TotalProduced, Producers, Consumers);
  std::printf("checksum: consumed=%ld expected=%ld  %s\n",
              ConsumedSum.load(), Expected,
              ConsumedSum.load() == Expected ? "OK" : "MISMATCH");
  std::printf("monitor object inflated: %s (wait() always inflates)\n",
              Locks.isInflated(MonitorObj) ? "yes" : "no");
  std::printf("\n%s", Stats.summary().c_str());
  return ConsumedSum.load() == Expected ? 0 : 1;
}

//===- examples/wordcount.cpp - The single-threaded synchronization tax ---===//
//
// The paper's motivating scenario (§1): "Even single-threaded
// applications may spend up to half their time performing useless
// synchronization due to the thread-safe nature of the Java libraries."
//
// This example is such an application: a word-frequency counter written
// against the microjvm's thread-safe library classes.  Every put/get on
// the Hashtable and every addElement/elementAt on the Vector is a
// synchronized method — all pure overhead in a single-threaded run.
// The same interpreted program runs on each protocol; a lock trace is
// recorded and characterized (Table 1 / Figure 3 style).
//
// Build & run:  ./build/examples/wordcount [words]
//
//===----------------------------------------------------------------------===//

#include "support/SplitMix64.h"
#include "support/Timer.h"
#include "vm/NativeLibrary.h"
#include "vm/VM.h"
#include "workload/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace thinlocks;
using namespace thinlocks::vm;
using namespace thinlocks::workload;

namespace {

/// Runs the word count: draws `Words` word-ids from a skewed
/// distribution (a Zipf-ish vocabulary, like real text), counts them in
/// a Hashtable, and keeps the distinct words in a Vector.  Returns the
/// elapsed nanos; optionally records the lock trace.
uint64_t runWordCount(ProtocolKind Protocol, int32_t Words,
                      LockTrace *TraceOut) {
  VM::Config Cfg;
  Cfg.Protocol = Protocol;
  VM Vm(Cfg);
  NativeLibrary Lib(Vm);

  std::unique_ptr<TracingBackend> Tracer;
  if (TraceOut) {
    Tracer = std::make_unique<TracingBackend>(Vm.sync(), *TraceOut);
    Vm.overrideSync(Tracer.get());
  }

  ScopedThreadAttachment Main(Vm.threads(), "main");
  const ThreadContext &Me = Main.context();
  Object *Counts = Vm.newInstance(Lib.hashtableClass());
  Object *Distinct = Vm.newInstance(Lib.vectorClass());

  auto call = [&](const Method &M, std::initializer_list<Value> Args) {
    std::vector<Value> ArgVec(Args);
    RunResult R = Vm.call(M, ArgVec, Me);
    if (!R.ok()) {
      std::fprintf(stderr, "wordcount trapped: %s\n",
                   trapName(R.TrapKind));
      std::exit(1);
    }
    return R.Result;
  };

  SplitMix64 Rng(2718281828u);
  StopWatch Watch;
  for (int32_t I = 0; I < Words; ++I) {
    // Skewed vocabulary: square a uniform draw over 1000 word ids.
    double U = Rng.nextDouble();
    int32_t WordId = static_cast<int32_t>(U * U * 1000.0);

    Value Old = call(Lib.hashtableGet(),
                     {Value::makeRef(Counts), Value::makeInt(WordId)});
    int32_t Count = Old.isRef() ? 0 : Old.asInt(); // null = unseen.
    if (Count == 0)
      call(Lib.vectorAddElement(),
           {Value::makeRef(Distinct), Value::makeInt(WordId)});
    call(Lib.hashtablePut(), {Value::makeRef(Counts),
                              Value::makeInt(WordId),
                              Value::makeInt(Count + 1)});
  }
  int32_t DistinctWords =
      call(Lib.vectorSize(), {Value::makeRef(Distinct)}).asInt();
  uint64_t Nanos = Watch.elapsedNanos();

  Vm.overrideSync(nullptr);
  std::printf("  %-10s %8.2f ms   (%d distinct words)\n",
              protocolKindName(Protocol), Nanos / 1e6, DistinctWords);
  return Nanos;
}

} // namespace

int main(int Argc, char **Argv) {
  int32_t Words = Argc > 1 ? std::atoi(Argv[1]) : 20000;
  std::printf("word-count of %d words through synchronized Hashtable + "
              "Vector (single thread)\n\n",
              Words);

  uint64_t Jdk = runWordCount(ProtocolKind::MonitorCache, Words, nullptr);
  uint64_t Ibm = runWordCount(ProtocolKind::HotLocks, Words, nullptr);
  uint64_t Thin = runWordCount(ProtocolKind::ThinLock, Words, nullptr);

  std::printf("\nspeedup of thin locks over JDK111: %.2fx   over IBM112: "
              "%.2fx\n",
              double(Jdk) / Thin, double(Ibm) / Thin);

  // Separate untimed pass with the recorder attached (recording costs a
  // mutex + append per operation, so it must never share a timed run).
  LockTrace Trace;
  std::printf("\nrecording pass for characterization:\n");
  runWordCount(ProtocolKind::ThinLock, Words, &Trace);

  std::printf("\nlock-trace characterization:\n");
  std::printf("  synchronized objects: %u\n", Trace.objectCount());
  std::printf("  lock operations:      %llu\n",
              static_cast<unsigned long long>(Trace.lockOperationCount()));
  std::printf("  locks / object:       %.1f\n", Trace.locksPerObject());
  double Mix[4];
  Trace.depthMix(Mix);
  std::printf("  depth mix:            first %.1f%%, second %.1f%%, "
              "third %.1f%%, fourth+ %.1f%%\n",
              Mix[0] * 100, Mix[1] * 100, Mix[2] * 100, Mix[3] * 100);
  std::printf("\nevery one of those %llu lock operations was uncontended "
              "— the single-threaded tax the paper removes.\n",
              static_cast<unsigned long long>(Trace.lockOperationCount()));
  return 0;
}

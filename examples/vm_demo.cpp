//===- examples/vm_demo.cpp - Interpreted Java-style workload -------------===//
//
// Assembles a small "program" for the microjvm — synchronized blocks,
// synchronized method calls, and thread-safe Vector usage — and runs it
// on all three synchronization protocols, timing each.  This is the
// paper's experimental setup in miniature: identical interpreted
// bytecode, different locking underneath.
//
// Build & run:  ./build/examples/vm_demo [iterations]
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"
#include "vm/Assembler.h"
#include "vm/NativeLibrary.h"
#include "vm/VM.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace thinlocks;
using namespace thinlocks::vm;

namespace {

// program(iters, vector): for i in 0..iters: v.addElement(i); then sums
// the first `iters` elements with elementAt inside a synchronized block.
uint64_t runDemo(ProtocolKind Protocol, int32_t Iterations) {
  VM::Config Cfg;
  Cfg.Protocol = Protocol;
  VM Vm(Cfg);
  NativeLibrary Lib(Vm);

  Klass &App = Vm.defineClass("demo/App", {});

  // Phase 1: fill a Vector through its synchronized addElement.
  Assembler Fill;
  Fill.countedLoop(2, 0, [&](Assembler &A) {
    A.aload(1).iload(2).invoke(Lib.vectorAddElement().Id);
  });
  Fill.iconst(0).iret();
  Method &FillM = Vm.defineMethod(App, "fill", MethodTraits{}, 2, 3,
                                  Fill.finish());

  // Phase 2: sum = 0; for i: synchronized(v) { } ; sum += v.elementAt(i).
  Assembler Sum;
  Sum.iconst(0).istore(3);
  Sum.countedLoop(2, 0, [&](Assembler &A) {
    A.synchronizedOn(1, [](Assembler &) {});
    A.aload(1).iload(2).invoke(Lib.vectorElementAt().Id);
    A.iload(3).iadd().istore(3);
  });
  Sum.iload(3).iret();
  Method &SumM = Vm.defineMethod(App, "sum", MethodTraits{}, 2, 4,
                                 Sum.finish());

  ScopedThreadAttachment Main(Vm.threads(), "main");
  Object *Vec = Vm.newInstance(Lib.vectorClass());
  Value Args[2] = {Value::makeInt(Iterations), Value::makeRef(Vec)};

  StopWatch Watch;
  RunResult FillR = Vm.call(FillM, Args, Main.context());
  RunResult SumR = Vm.call(SumM, Args, Main.context());
  uint64_t Nanos = Watch.elapsedNanos();

  if (!FillR.ok() || !SumR.ok()) {
    std::fprintf(stderr, "demo trapped!\n");
    std::exit(1);
  }
  long long Expected =
      static_cast<long long>(Iterations) * (Iterations - 1) / 2;
  if (SumR.Result.asInt() !=
      static_cast<int32_t>(static_cast<uint32_t>(Expected))) {
    std::fprintf(stderr, "checksum mismatch!\n");
    std::exit(1);
  }
  return Nanos;
}

} // namespace

int main(int Argc, char **Argv) {
  int32_t Iterations = Argc > 1 ? std::atoi(Argv[1]) : 30000;

  std::printf("microjvm demo: %d synchronized Vector ops + %d "
              "synchronized blocks per protocol\n\n",
              2 * Iterations, Iterations);

  const ProtocolKind Protocols[] = {ProtocolKind::MonitorCache,
                                    ProtocolKind::HotLocks,
                                    ProtocolKind::ThinLock};
  uint64_t Baseline = 0;
  for (ProtocolKind P : Protocols) {
    // Median of 3 runs, timing only the interpreted phases (VM setup is
    // excluded inside runDemo).
    uint64_t Samples[3];
    for (uint64_t &S : Samples)
      S = runDemo(P, Iterations);
    std::sort(std::begin(Samples), std::end(Samples));
    uint64_t Nanos = Samples[1];
    if (P == ProtocolKind::MonitorCache)
      Baseline = Nanos;
    std::printf("  %-10s %8.2f ms   speedup vs JDK111: %.2fx\n",
                protocolKindName(P), Nanos / 1e6,
                Baseline ? static_cast<double>(Baseline) / Nanos : 1.0);
  }
  return 0;
}

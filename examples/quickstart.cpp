//===- examples/quickstart.cpp - Thin locks in 60 lines -------------------===//
//
// Minimal tour of the public API: create a heap and a thread registry,
// lock objects with the thin-lock protocol, watch the lock word change
// shape, and force the three inflation causes (contention, nesting
// overflow, wait).
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "threads/ThreadRegistry.h"

#include <cstdio>
#include <thread>

using namespace thinlocks;

static void printWord(const char *When, const Object *Obj) {
  uint32_t Word = Obj->lockWord().load();
  if (lockword::isFat(Word)) {
    std::printf("%-28s lock word = 0x%08x  [fat, monitor #%u]\n", When,
                Word, lockword::monitorIndexOf(Word));
    return;
  }
  if (lockword::isUnlocked(Word)) {
    std::printf("%-28s lock word = 0x%08x  [thin, unlocked]\n", When, Word);
    return;
  }
  std::printf("%-28s lock word = 0x%08x  [thin, thread %u, %u hold(s)]\n",
              When, Word, lockword::threadIndexOf(Word),
              lockword::countOf(Word) + 1);
}

int main() {
  // The substrates: a heap for objects, a registry handing out 15-bit
  // thread indices, and a table mapping 23-bit indices to fat locks.
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks(Monitors, &Stats);

  ScopedThreadAttachment Main(Registry, "main");
  const ThreadContext &Me = Main.context();

  const ClassInfo &PointClass = TheHeap.classes().registerClass("Point", 2);
  Object *Obj = TheHeap.allocate(PointClass);

  std::printf("== The common case: lock and unlock are a few instructions\n");
  printWord("fresh object:", Obj);
  Locks.lock(Obj, Me); // One compare-and-swap.
  printWord("after lock:", Obj);
  Locks.lock(Obj, Me); // Nested: load + store, no atomics.
  printWord("after nested lock:", Obj);
  Locks.unlock(Obj, Me); // Plain store.
  Locks.unlock(Obj, Me);
  printWord("after unlocks:", Obj);

  std::printf("\n== Inflation cause 1: contention\n");
  Locks.lock(Obj, Me);
  std::thread Contender([&] {
    ScopedThreadAttachment Worker(Registry, "contender");
    Locks.lock(Obj, Worker.context()); // Spins, then inflates.
    Locks.unlock(Obj, Worker.context());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Locks.unlock(Obj, Me);
  Contender.join();
  printWord("after contention:", Obj);

  std::printf("\n== Inflation cause 2: the 257th nested hold\n");
  Object *Deep = TheHeap.allocate(PointClass);
  for (int I = 0; I < 257; ++I)
    Locks.lock(Deep, Me);
  printWord("at depth 257:", Deep);
  for (int I = 0; I < 257; ++I)
    Locks.unlock(Deep, Me);

  std::printf("\n== Inflation cause 3: wait() needs queues\n");
  Object *Cond = TheHeap.allocate(PointClass);
  Locks.lock(Cond, Me);
  Locks.wait(Cond, Me, /*TimeoutNanos=*/1'000'000); // 1ms timed wait.
  printWord("after wait:", Cond);
  Locks.unlock(Cond, Me);

  std::printf("\n== Statistics\n%s", Stats.summary().c_str());
  return 0;
}

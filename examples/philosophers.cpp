//===- examples/philosophers.cpp - Dining philosophers on thin locks ------===//
//
// Five philosophers, five fork objects, two strategies:
//
//   ordered  — classic deadlock avoidance: always lock the lower-indexed
//              fork first (blocking lock()).
//   polite   — tryLock() the second fork; on failure, put the first one
//              down and back off, so no one ever holds-and-waits.
//
// Either way, the forks are plain heap objects synchronized through the
// thin-lock protocol: watch how many forks end up inflated — only the
// ones that actually experienced contention (the paper's "locality of
// contention" in action).
//
// Build & run:  ./build/examples/philosophers [meals] [strategy]
//               strategy: ordered | polite     (default: both)
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "support/SpinWait.h"
#include "threads/ThreadRegistry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace thinlocks;

namespace {

constexpr int NumPhilosophers = 5;

struct Table {
  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks{Monitors, &Stats};
  std::vector<Object *> Forks;
  std::vector<long> Meals = std::vector<long>(NumPhilosophers, 0);

  Table() {
    const ClassInfo &ForkClass = TheHeap.classes().registerClass("Fork", 0);
    for (int I = 0; I < NumPhilosophers; ++I)
      Forks.push_back(TheHeap.allocate(ForkClass));
  }
};

void runOrdered(Table &T, int Self, long MealsWanted) {
  ScopedThreadAttachment Attachment(T.Registry, "philosopher");
  const ThreadContext &Me = Attachment.context();
  Object *Left = T.Forks[Self];
  Object *Right = T.Forks[(Self + 1) % NumPhilosophers];
  // Total order on forks prevents deadlock.
  Object *First = Left < Right ? Left : Right;
  Object *Second = Left < Right ? Right : Left;

  for (long M = 0; M < MealsWanted; ++M) {
    T.Locks.lock(First, Me);
    T.Locks.lock(Second, Me);
    ++T.Meals[Self]; // "Eating": a short critical section on both forks.
    T.Locks.unlock(Second, Me);
    T.Locks.unlock(First, Me);
  }
}

void runPolite(Table &T, int Self, long MealsWanted) {
  ScopedThreadAttachment Attachment(T.Registry, "philosopher");
  const ThreadContext &Me = Attachment.context();
  Object *Left = T.Forks[Self];
  Object *Right = T.Forks[(Self + 1) % NumPhilosophers];

  for (long M = 0; M < MealsWanted;) {
    T.Locks.lock(Left, Me);
    if (T.Locks.tryLock(Right, Me)) {
      ++T.Meals[Self];
      T.Locks.unlock(Right, Me);
      T.Locks.unlock(Left, Me);
      ++M;
    } else {
      // Put the left fork down and yield: no hold-and-wait, no deadlock.
      T.Locks.unlock(Left, Me);
      std::this_thread::yield();
    }
  }
}

void runStrategy(const char *Name,
                 void (*Strategy)(Table &, int, long), long MealsWanted) {
  Table T;
  std::vector<std::thread> Threads;
  for (int P = 0; P < NumPhilosophers; ++P)
    Threads.emplace_back([&T, P, Strategy, MealsWanted] {
      Strategy(T, P, MealsWanted);
    });
  for (auto &Th : Threads)
    Th.join();

  long Total = 0;
  for (long M : T.Meals)
    Total += M;
  int InflatedForks = 0;
  for (Object *Fork : T.Forks)
    InflatedForks += T.Locks.isInflated(Fork) ? 1 : 0;

  std::printf("%-8s everyone ate (", Name);
  for (int P = 0; P < NumPhilosophers; ++P)
    std::printf("%s%ld", P ? ", " : "", T.Meals[P]);
  std::printf(") = %ld meals\n", Total);
  std::printf("         forks inflated by contention: %d of %d\n",
              InflatedForks, NumPhilosophers);
  std::printf("         contention inflations: %llu, spin iterations: "
              "%llu\n\n",
              static_cast<unsigned long long>(
                  T.Stats.contentionInflations()),
              static_cast<unsigned long long>(T.Stats.spinIterations()));
}

} // namespace

int main(int Argc, char **Argv) {
  long MealsWanted = Argc > 1 ? std::atol(Argv[1]) : 2000;
  const char *Strategy = Argc > 2 ? Argv[2] : "both";

  std::printf("%d philosophers, %ld meals each\n\n", NumPhilosophers,
              MealsWanted);
  if (std::strcmp(Strategy, "polite") != 0)
    runStrategy("ordered", runOrdered, MealsWanted);
  if (std::strcmp(Strategy, "ordered") != 0)
    runStrategy("polite", runPolite, MealsWanted);
  return 0;
}

//===- examples/lock_census.cpp - Characterize a workload's locking -------===//
//
// Replays one of the paper's macro-benchmark profiles through the
// instrumented thin-lock protocol and prints a Table 1-style row plus a
// Figure 3-style nesting-depth breakdown — the measurement methodology of
// paper §3.1-3.2 as a runnable tool.
//
// Build & run:  ./build/examples/lock_census [profile-name]
//               ./build/examples/lock_census --list
//
//===----------------------------------------------------------------------===//

#include "core/ThinLock.h"
#include "heap/Heap.h"
#include "support/TableFormatter.h"
#include "threads/ThreadRegistry.h"
#include "workload/MacroReplay.h"
#include "workload/Profiles.h"

#include <cstdio>
#include <cstring>

using namespace thinlocks;
using namespace thinlocks::workload;

int main(int Argc, char **Argv) {
  if (Argc > 1 && std::strcmp(Argv[1], "--list") == 0) {
    std::printf("available profiles:\n");
    for (const BenchmarkProfile &P : macroBenchmarkProfiles())
      std::printf("  %-12s %s\n", P.Name, P.Description);
    return 0;
  }

  const char *Name = Argc > 1 ? Argv[1] : "javalex";
  const BenchmarkProfile *Profile = findProfile(Name);
  if (!Profile) {
    std::fprintf(stderr,
                 "unknown profile '%s' (try --list for the 18 available)\n",
                 Name);
    return 1;
  }

  Heap TheHeap;
  ThreadRegistry Registry;
  MonitorTable Monitors;
  LockStats Stats;
  ThinLockManager Locks(Monitors, &Stats);
  ScopedThreadAttachment Main(Registry, "census");

  ReplayConfig Cfg;
  Cfg.ScaleDivisor = 16;
  Cfg.MaxSyncOps = 2'000'000;
  ReplayResult Result =
      replayProfile(*Profile, Locks, TheHeap, Main.context(), Cfg);

  std::printf("profile: %s — %s\n", Profile->Name, Profile->Description);
  std::printf("replayed at 1/%llu scale\n\n",
              static_cast<unsigned long long>(Cfg.ScaleDivisor));

  TableFormatter Table({"", "paper (full run)", "replayed"});
  Table.addRow({"objects created",
                TableFormatter::formatWithCommas(Profile->ObjectsCreated),
                TableFormatter::formatWithCommas(Result.ObjectsCreated)});
  Table.addRow(
      {"synchronized objects",
       TableFormatter::formatWithCommas(Profile->SynchronizedObjects),
       TableFormatter::formatWithCommas(Result.SynchronizedObjects)});
  Table.addRow({"sync operations",
                TableFormatter::formatWithCommas(Profile->SyncOperations),
                TableFormatter::formatWithCommas(Result.SyncOperations)});
  Table.addRow(
      {"syncs / sync object",
       TableFormatter::formatDouble(syncsPerSyncObject(*Profile), 1),
       TableFormatter::formatDouble(
           static_cast<double>(Result.SyncOperations) /
               static_cast<double>(Result.SynchronizedObjects),
           1)});
  std::printf("%s\n", Table.render().c_str());

  TableFormatter Depths({"lock depth", "profile (Fig. 3)", "measured"});
  const char *Labels[4] = {"first", "second", "third", "fourth+"};
  for (int B = 0; B < 4; ++B)
    Depths.addRow(
        {Labels[B],
         TableFormatter::formatDouble(Profile->DepthMix[B] * 100, 1) + "%",
         TableFormatter::formatDouble(Result.depthFraction(B) * 100, 1) +
             "%"});
  std::printf("%s\n", Depths.render().c_str());

  std::printf("protocol stats:\n%s", Stats.summary().c_str());
  std::printf("monitors allocated: %u (single-threaded replay: thin locks "
              "never inflate)\n",
              Monitors.liveMonitorCount());
  std::printf("replay time: %.2f ms\n", Result.ElapsedNanos / 1e6);
  return 0;
}

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lockword_test[1]_include.cmake")
include("/root/repo/build/tests/threads_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/fatlock_test[1]_include.cmake")
include("/root/repo/build/tests/monitortable_test[1]_include.cmake")
include("/root/repo/build/tests/thinlock_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_test[1]_include.cmake")
include("/root/repo/build/tests/monitorcache_test[1]_include.cmake")
include("/root/repo/build/tests/hotlocks_test[1]_include.cmake")
include("/root/repo/build/tests/eagermonitor_test[1]_include.cmake")
include("/root/repo/build/tests/waitnotify_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/nativelibrary_test[1]_include.cmake")
include("/root/repo/build/tests/vmthreads_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/deflation_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/exprcompiler_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/eagermonitor_test.dir/eagermonitor_test.cpp.o"
  "CMakeFiles/eagermonitor_test.dir/eagermonitor_test.cpp.o.d"
  "eagermonitor_test"
  "eagermonitor_test.pdb"
  "eagermonitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eagermonitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for eagermonitor_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for nativelibrary_test.
# This may be replaced when dependencies are built.

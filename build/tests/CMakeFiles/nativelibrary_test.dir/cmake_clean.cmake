file(REMOVE_RECURSE
  "CMakeFiles/nativelibrary_test.dir/nativelibrary_test.cpp.o"
  "CMakeFiles/nativelibrary_test.dir/nativelibrary_test.cpp.o.d"
  "nativelibrary_test"
  "nativelibrary_test.pdb"
  "nativelibrary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nativelibrary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for deflation_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/deflation_test.dir/deflation_test.cpp.o"
  "CMakeFiles/deflation_test.dir/deflation_test.cpp.o.d"
  "deflation_test"
  "deflation_test.pdb"
  "deflation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deflation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for monitortable_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/monitortable_test.dir/monitortable_test.cpp.o"
  "CMakeFiles/monitortable_test.dir/monitortable_test.cpp.o.d"
  "monitortable_test"
  "monitortable_test.pdb"
  "monitortable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitortable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for thinlock_test.
# This may be replaced when dependencies are built.

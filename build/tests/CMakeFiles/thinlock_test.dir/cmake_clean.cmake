file(REMOVE_RECURSE
  "CMakeFiles/thinlock_test.dir/thinlock_test.cpp.o"
  "CMakeFiles/thinlock_test.dir/thinlock_test.cpp.o.d"
  "thinlock_test"
  "thinlock_test.pdb"
  "thinlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for exprcompiler_test.
# This may be replaced when dependencies are built.

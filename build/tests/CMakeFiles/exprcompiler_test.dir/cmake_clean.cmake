file(REMOVE_RECURSE
  "CMakeFiles/exprcompiler_test.dir/exprcompiler_test.cpp.o"
  "CMakeFiles/exprcompiler_test.dir/exprcompiler_test.cpp.o.d"
  "exprcompiler_test"
  "exprcompiler_test.pdb"
  "exprcompiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exprcompiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

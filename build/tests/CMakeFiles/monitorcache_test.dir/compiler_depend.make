# Empty compiler generated dependencies file for monitorcache_test.
# This may be replaced when dependencies are built.

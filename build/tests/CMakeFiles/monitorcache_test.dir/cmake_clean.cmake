file(REMOVE_RECURSE
  "CMakeFiles/monitorcache_test.dir/monitorcache_test.cpp.o"
  "CMakeFiles/monitorcache_test.dir/monitorcache_test.cpp.o.d"
  "monitorcache_test"
  "monitorcache_test.pdb"
  "monitorcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitorcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

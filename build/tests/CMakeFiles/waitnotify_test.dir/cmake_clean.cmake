file(REMOVE_RECURSE
  "CMakeFiles/waitnotify_test.dir/waitnotify_test.cpp.o"
  "CMakeFiles/waitnotify_test.dir/waitnotify_test.cpp.o.d"
  "waitnotify_test"
  "waitnotify_test.pdb"
  "waitnotify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waitnotify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

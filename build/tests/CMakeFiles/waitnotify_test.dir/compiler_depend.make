# Empty compiler generated dependencies file for waitnotify_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fatlock_test.dir/fatlock_test.cpp.o"
  "CMakeFiles/fatlock_test.dir/fatlock_test.cpp.o.d"
  "fatlock_test"
  "fatlock_test.pdb"
  "fatlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fatlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fatlock_test.
# This may be replaced when dependencies are built.

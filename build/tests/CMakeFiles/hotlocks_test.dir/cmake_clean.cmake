file(REMOVE_RECURSE
  "CMakeFiles/hotlocks_test.dir/hotlocks_test.cpp.o"
  "CMakeFiles/hotlocks_test.dir/hotlocks_test.cpp.o.d"
  "hotlocks_test"
  "hotlocks_test.pdb"
  "hotlocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotlocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

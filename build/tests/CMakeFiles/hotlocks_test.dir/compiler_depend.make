# Empty compiler generated dependencies file for hotlocks_test.
# This may be replaced when dependencies are built.

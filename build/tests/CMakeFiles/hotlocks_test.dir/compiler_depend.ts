# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hotlocks_test.

# Empty dependencies file for hotlocks_test.
# This may be replaced when dependencies are built.

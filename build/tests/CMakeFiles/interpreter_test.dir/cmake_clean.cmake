file(REMOVE_RECURSE
  "CMakeFiles/interpreter_test.dir/interpreter_test.cpp.o"
  "CMakeFiles/interpreter_test.dir/interpreter_test.cpp.o.d"
  "interpreter_test"
  "interpreter_test.pdb"
  "interpreter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

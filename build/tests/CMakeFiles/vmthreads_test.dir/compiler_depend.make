# Empty compiler generated dependencies file for vmthreads_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vmthreads_test.dir/vmthreads_test.cpp.o"
  "CMakeFiles/vmthreads_test.dir/vmthreads_test.cpp.o.d"
  "vmthreads_test"
  "vmthreads_test.pdb"
  "vmthreads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmthreads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/threads_test.dir/threads_test.cpp.o"
  "CMakeFiles/threads_test.dir/threads_test.cpp.o.d"
  "threads_test"
  "threads_test.pdb"
  "threads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

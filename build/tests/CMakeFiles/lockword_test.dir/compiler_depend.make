# Empty compiler generated dependencies file for lockword_test.
# This may be replaced when dependencies are built.

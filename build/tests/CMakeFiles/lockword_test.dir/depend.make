# Empty dependencies file for lockword_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lockword_test.dir/lockword_test.cpp.o"
  "CMakeFiles/lockword_test.dir/lockword_test.cpp.o.d"
  "lockword_test"
  "lockword_test.pdb"
  "lockword_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockword_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

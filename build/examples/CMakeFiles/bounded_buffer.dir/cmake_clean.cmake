file(REMOVE_RECURSE
  "CMakeFiles/bounded_buffer.dir/bounded_buffer.cpp.o"
  "CMakeFiles/bounded_buffer.dir/bounded_buffer.cpp.o.d"
  "bounded_buffer"
  "bounded_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

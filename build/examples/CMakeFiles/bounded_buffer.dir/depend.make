# Empty dependencies file for bounded_buffer.
# This may be replaced when dependencies are built.

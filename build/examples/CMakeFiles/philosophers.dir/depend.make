# Empty dependencies file for philosophers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/philosophers.dir/philosophers.cpp.o"
  "CMakeFiles/philosophers.dir/philosophers.cpp.o.d"
  "philosophers"
  "philosophers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/philosophers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

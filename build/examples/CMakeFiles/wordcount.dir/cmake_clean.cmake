file(REMOVE_RECURSE
  "CMakeFiles/wordcount.dir/wordcount.cpp.o"
  "CMakeFiles/wordcount.dir/wordcount.cpp.o.d"
  "wordcount"
  "wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

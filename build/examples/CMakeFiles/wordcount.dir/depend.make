# Empty dependencies file for wordcount.
# This may be replaced when dependencies are built.

# Empty dependencies file for lock_census.
# This may be replaced when dependencies are built.

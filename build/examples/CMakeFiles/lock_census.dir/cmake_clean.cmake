file(REMOVE_RECURSE
  "CMakeFiles/lock_census.dir/lock_census.cpp.o"
  "CMakeFiles/lock_census.dir/lock_census.cpp.o.d"
  "lock_census"
  "lock_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/calculator.dir/calculator.cpp.o"
  "CMakeFiles/calculator.dir/calculator.cpp.o.d"
  "calculator"
  "calculator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calculator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

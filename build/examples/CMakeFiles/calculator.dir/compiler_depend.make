# Empty compiler generated dependencies file for calculator.
# This may be replaced when dependencies are built.

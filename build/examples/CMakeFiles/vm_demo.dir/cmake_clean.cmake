file(REMOVE_RECURSE
  "CMakeFiles/vm_demo.dir/vm_demo.cpp.o"
  "CMakeFiles/vm_demo.dir/vm_demo.cpp.o.d"
  "vm_demo"
  "vm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

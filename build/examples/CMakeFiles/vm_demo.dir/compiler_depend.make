# Empty compiler generated dependencies file for vm_demo.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fastpath.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fastpath.dir/bench_fastpath.cpp.o"
  "CMakeFiles/bench_fastpath.dir/bench_fastpath.cpp.o.d"
  "bench_fastpath"
  "bench_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_deflation.dir/bench_deflation.cpp.o"
  "CMakeFiles/bench_deflation.dir/bench_deflation.cpp.o.d"
  "bench_deflation"
  "bench_deflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

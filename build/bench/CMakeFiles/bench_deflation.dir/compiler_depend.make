# Empty compiler generated dependencies file for bench_deflation.
# This may be replaced when dependencies are built.

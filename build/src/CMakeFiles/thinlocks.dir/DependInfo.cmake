
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/EagerMonitor.cpp" "src/CMakeFiles/thinlocks.dir/baselines/EagerMonitor.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/baselines/EagerMonitor.cpp.o.d"
  "/root/repo/src/baselines/HotLocks.cpp" "src/CMakeFiles/thinlocks.dir/baselines/HotLocks.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/baselines/HotLocks.cpp.o.d"
  "/root/repo/src/baselines/MonitorCache.cpp" "src/CMakeFiles/thinlocks.dir/baselines/MonitorCache.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/baselines/MonitorCache.cpp.o.d"
  "/root/repo/src/core/LockStats.cpp" "src/CMakeFiles/thinlocks.dir/core/LockStats.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/core/LockStats.cpp.o.d"
  "/root/repo/src/core/SyncBackend.cpp" "src/CMakeFiles/thinlocks.dir/core/SyncBackend.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/core/SyncBackend.cpp.o.d"
  "/root/repo/src/core/ThinLock.cpp" "src/CMakeFiles/thinlocks.dir/core/ThinLock.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/core/ThinLock.cpp.o.d"
  "/root/repo/src/fatlock/FatLock.cpp" "src/CMakeFiles/thinlocks.dir/fatlock/FatLock.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/fatlock/FatLock.cpp.o.d"
  "/root/repo/src/fatlock/MonitorTable.cpp" "src/CMakeFiles/thinlocks.dir/fatlock/MonitorTable.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/fatlock/MonitorTable.cpp.o.d"
  "/root/repo/src/heap/ClassInfo.cpp" "src/CMakeFiles/thinlocks.dir/heap/ClassInfo.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/heap/ClassInfo.cpp.o.d"
  "/root/repo/src/heap/Heap.cpp" "src/CMakeFiles/thinlocks.dir/heap/Heap.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/heap/Heap.cpp.o.d"
  "/root/repo/src/support/TableFormatter.cpp" "src/CMakeFiles/thinlocks.dir/support/TableFormatter.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/support/TableFormatter.cpp.o.d"
  "/root/repo/src/threads/ThreadRegistry.cpp" "src/CMakeFiles/thinlocks.dir/threads/ThreadRegistry.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/threads/ThreadRegistry.cpp.o.d"
  "/root/repo/src/vm/Assembler.cpp" "src/CMakeFiles/thinlocks.dir/vm/Assembler.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/vm/Assembler.cpp.o.d"
  "/root/repo/src/vm/Disassembler.cpp" "src/CMakeFiles/thinlocks.dir/vm/Disassembler.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/vm/Disassembler.cpp.o.d"
  "/root/repo/src/vm/ExprCompiler.cpp" "src/CMakeFiles/thinlocks.dir/vm/ExprCompiler.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/vm/ExprCompiler.cpp.o.d"
  "/root/repo/src/vm/Interpreter.cpp" "src/CMakeFiles/thinlocks.dir/vm/Interpreter.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/vm/Interpreter.cpp.o.d"
  "/root/repo/src/vm/Klass.cpp" "src/CMakeFiles/thinlocks.dir/vm/Klass.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/vm/Klass.cpp.o.d"
  "/root/repo/src/vm/NativeLibrary.cpp" "src/CMakeFiles/thinlocks.dir/vm/NativeLibrary.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/vm/NativeLibrary.cpp.o.d"
  "/root/repo/src/vm/VM.cpp" "src/CMakeFiles/thinlocks.dir/vm/VM.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/vm/VM.cpp.o.d"
  "/root/repo/src/vm/Verifier.cpp" "src/CMakeFiles/thinlocks.dir/vm/Verifier.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/vm/Verifier.cpp.o.d"
  "/root/repo/src/workload/MacroReplay.cpp" "src/CMakeFiles/thinlocks.dir/workload/MacroReplay.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/workload/MacroReplay.cpp.o.d"
  "/root/repo/src/workload/MicroBench.cpp" "src/CMakeFiles/thinlocks.dir/workload/MicroBench.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/workload/MicroBench.cpp.o.d"
  "/root/repo/src/workload/Profiles.cpp" "src/CMakeFiles/thinlocks.dir/workload/Profiles.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/workload/Profiles.cpp.o.d"
  "/root/repo/src/workload/Trace.cpp" "src/CMakeFiles/thinlocks.dir/workload/Trace.cpp.o" "gcc" "src/CMakeFiles/thinlocks.dir/workload/Trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

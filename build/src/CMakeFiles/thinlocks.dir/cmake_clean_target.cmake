file(REMOVE_RECURSE
  "libthinlocks.a"
)

# Empty dependencies file for thinlocks.
# This may be replaced when dependencies are built.
